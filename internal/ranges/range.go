// Package ranges implements the value-range reasoning behind branch
// correlations: an interval algebra over int64 with open bounds, the
// affine decomposition of register def chains (value = ±root + offset),
// and the mapping from branch directions to ranges of the underlying
// loaded or stored value.
//
// The paper's subsumption relation — "if a variable is in one range,
// then it must be in the other range, e.g. range [0,5] subsumes range
// [0,10]" — is Range.SubsetOf here.
package ranges

import "math"

// Kind discriminates range shapes.
type Kind int

// Range kinds. An Interval with neither bound set is the full range.
const (
	Empty Kind = iota
	Interval
	Exclude // all values except a single point
)

// Range is a set of int64 values in one of three shapes: empty, a
// (possibly half-open) interval, or the complement of a point.
type Range struct {
	Kind   Kind
	Lo, Hi int64 // interval bounds, inclusive, valid when the Set flag holds
	LoSet  bool
	HiSet  bool
	Ex     int64 // excluded point for Exclude
}

// Full is the unconstrained range.
func Full() Range { return Range{Kind: Interval} }

// EmptyRange is the empty set.
func EmptyRange() Range { return Range{Kind: Empty} }

// Point is the single-value range [v,v].
func Point(v int64) Range {
	return Range{Kind: Interval, Lo: v, Hi: v, LoSet: true, HiSet: true}
}

// AtMost is (-inf, v].
func AtMost(v int64) Range { return Range{Kind: Interval, Hi: v, HiSet: true} }

// AtLeast is [v, +inf).
func AtLeast(v int64) Range { return Range{Kind: Interval, Lo: v, LoSet: true} }

// Between is [lo, hi]; an inverted pair yields the empty range.
func Between(lo, hi int64) Range {
	if lo > hi {
		return EmptyRange()
	}
	return Range{Kind: Interval, Lo: lo, Hi: hi, LoSet: true, HiSet: true}
}

// NotEqual is the complement of a point.
func NotEqual(v int64) Range { return Range{Kind: Exclude, Ex: v} }

// IsFull reports whether the range is unconstrained.
func (r Range) IsFull() bool {
	return r.Kind == Interval && !r.LoSet && !r.HiSet
}

// Contains reports membership of v.
func (r Range) Contains(v int64) bool {
	switch r.Kind {
	case Empty:
		return false
	case Interval:
		if r.LoSet && v < r.Lo {
			return false
		}
		if r.HiSet && v > r.Hi {
			return false
		}
		return true
	case Exclude:
		return v != r.Ex
	}
	return false
}

// SubsetOf reports whether every value in r is also in o — the paper's
// "r subsumes o" relation (being in r implies being in o).
func (r Range) SubsetOf(o Range) bool {
	if r.Kind == Empty {
		return true
	}
	if o.IsFull() {
		return true
	}
	switch r.Kind {
	case Interval:
		switch o.Kind {
		case Empty:
			return false
		case Interval:
			if o.LoSet && (!r.LoSet || r.Lo < o.Lo) {
				return false
			}
			if o.HiSet && (!r.HiSet || r.Hi > o.Hi) {
				return false
			}
			return true
		case Exclude:
			return !r.Contains(o.Ex)
		}
	case Exclude:
		switch o.Kind {
		case Empty:
			return false
		case Interval:
			return o.IsFull() // the complement of a point fits only in full
		case Exclude:
			return r.Ex == o.Ex
		}
	}
	return false
}

// addSat is saturating addition used for bound arithmetic; on overflow
// the caller widens to unbounded, keeping transforms conservative.
func addSat(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// Shift returns the range of x+delta for x in r. Bound overflow widens
// the affected side to unbounded (a conservative over-approximation).
func (r Range) Shift(delta int64) Range {
	switch r.Kind {
	case Empty:
		return r
	case Exclude:
		ex, ok := addSat(r.Ex, delta)
		if !ok {
			return Full()
		}
		return NotEqual(ex)
	}
	out := Range{Kind: Interval}
	if r.LoSet {
		if lo, ok := addSat(r.Lo, delta); ok {
			out.Lo, out.LoSet = lo, true
		}
	}
	if r.HiSet {
		if hi, ok := addSat(r.Hi, delta); ok {
			out.Hi, out.HiSet = hi, true
		}
	}
	return out
}

// Neg returns the range of -x for x in r.
func (r Range) Neg() Range {
	switch r.Kind {
	case Empty:
		return r
	case Exclude:
		if r.Ex == math.MinInt64 {
			return Full()
		}
		return NotEqual(-r.Ex)
	}
	out := Range{Kind: Interval}
	if r.HiSet && r.Hi != math.MinInt64 {
		out.Lo, out.LoSet = -r.Hi, true
	}
	if r.LoSet && r.Lo != math.MinInt64 {
		out.Hi, out.HiSet = -r.Lo, true
	}
	// If any negation would overflow (only -MinInt64), that side is
	// simply left unbounded.
	return out
}

func (r Range) String() string {
	switch r.Kind {
	case Empty:
		return "∅"
	case Exclude:
		return "≠" + itoa(r.Ex)
	}
	s := "("
	if r.LoSet {
		s = "[" + itoa(r.Lo)
	} else {
		s += "-inf"
	}
	s += ", "
	if r.HiSet {
		s += itoa(r.Hi) + "]"
	} else {
		s += "+inf)"
	}
	return s
}

func itoa(v int64) string {
	// strconv-free tiny formatter to keep the hot path allocation-light
	// is unnecessary here; use the stdlib via fmt-free conversion.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
