package incident

// Layer 3: correlation and ranking. Signals that survive dedup are
// clustered by overlapping sequence ranges (TimeCluster), ordered by
// cross-session first occurrence (LeadLag), scored, and rendered into
// Incident records. Everything here works on the commutative aggregates
// layers 1 and 2 maintained, sorts on deterministic keys before any
// arithmetic, and never consults wall clock or session ids — the same
// streams always rank the same way.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ipds"
)

// Incident is one ranked, folded alarm source with its explanation.
type Incident struct {
	ID          int      `json:"id"` // 1-based rank
	Score       float64  `json:"score"`
	Func        string   `json:"func"`
	PC          uint64   `json:"pc"`
	Alarms      uint64   `json:"alarms"`
	Folded      uint64   `json:"folded"`
	Sessions    int      `json:"sessions"`
	FirstSeq    uint64   `json:"first_seq"`
	LastSeq     uint64   `json:"last_seq"`
	Bursts      int      `json:"bursts"`
	Leads       int      `json:"leads"`
	Cluster     int      `json:"cluster"`      // 1-based cluster id
	ClusterSize int      `json:"cluster_size"` // signals in the cluster
	Root        bool     `json:"root"`         // earliest onset in its cluster
	Evidence    []string `json:"evidence"`
	Context     *Context `json:"context,omitempty"`
}

// Context summarises the incident's best (earliest) forensic capture.
type Context struct {
	Seq      uint64   `json:"seq"`      // alarm the capture annotates
	Recorded uint64   `json:"recorded"` // recorder lifetime events at capture
	Window   int      `json:"window"`   // recent events retained
	Stack    []string `json:"stack,omitempty"`
}

// Scoring weights. Volume is log-damped so a 69k-alarm storm does not
// drown its few-alarm root; change-points and breadth carry the rest,
// burst and lead bonuses capped so one dimension cannot run away.
const (
	scoreVolume   = 6.0  // × log2(1 + alarms)
	scoreBreadth  = 2.0  // × sessions
	scoreBurst    = 10.0 // × min(bursts, scoreBurstCap)
	scoreLead     = 3.0  // × min(leads, scoreLeadCap)
	scoreRoot     = 6.0  // earliest onset of a multi-signal cluster
	scoreBurstCap = 4
	scoreLeadCap  = 3
)

// pairKey orders two signals for the LeadLag tallies: a first, b later.
type pairKey struct{ a, b *signal }

// pairStat tallies one ordered pair across sessions.
type pairStat struct {
	n   uint64 // sessions where a's first alarm preceded b's
	lag uint64 // summed first-seq gaps over those sessions
}

// leadTo is one confirmed lead edge used for evidence rendering.
type leadTo struct {
	to      *signal
	n       uint64
	meanLag uint64
}

// Incidents computes the ranked incident list from the current state.
// It is a pure read (idempotent, repeatable); feeding more alarms and
// ranking again refines the same list.
func (a *Analyzer) Incidents() []Incident {
	t0 := nowNanos()
	a.mu.Lock()
	defer a.mu.Unlock()

	if len(a.signals) == 0 {
		a.met.open.Set(0)
		return nil
	}

	// Deterministic working order: creation order varies with session
	// interleaving, so every pass below starts from a sorted slice.
	sigs := make([]*signal, 0, len(a.signals))
	for _, s := range a.signals {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].firstSeq != sigs[j].firstSeq {
			return sigs[i].firstSeq < sigs[j].firstSeq
		}
		if sigs[i].fn != sigs[j].fn {
			return sigs[i].fn < sigs[j].fn
		}
		return sigs[i].pc < sigs[j].pc
	})

	// Effective bursts: closed-bucket detections plus still-open buckets
	// that would fire if closed now (wouldFire copies the detector, so
	// ranking mid-stream never perturbs it). Sums over the session map
	// are commutative, so iteration order is irrelevant.
	bursts := make(map[*signal]int, len(sigs))
	firstBurst := make(map[*signal]uint64, len(sigs))
	for _, s := range sigs {
		bursts[s] = s.bursts
		firstBurst[s] = s.firstBurst
	}
	for _, st := range a.sessions {
		for s, sr := range st.series {
			if sr.open && sr.cu.wouldFire(sr.count) {
				bursts[s]++
				if sr.bucket < firstBurst[s] {
					firstBurst[s] = sr.bucket
				}
			}
		}
	}

	// TimeCluster: sweep sorted [firstBucket, lastBucket] ranges,
	// merging overlaps and gaps up to ClusterGap.
	byBucket := append([]*signal(nil), sigs...)
	sort.Slice(byBucket, func(i, j int) bool {
		if byBucket[i].firstBucket != byBucket[j].firstBucket {
			return byBucket[i].firstBucket < byBucket[j].firstBucket
		}
		if byBucket[i].fn != byBucket[j].fn {
			return byBucket[i].fn < byBucket[j].fn
		}
		return byBucket[i].pc < byBucket[j].pc
	})
	cluster := make(map[*signal]int, len(sigs))
	clusterSize := map[int]int{}
	nClusters := 0
	var end uint64
	for _, s := range byBucket {
		if nClusters == 0 || s.firstBucket > end+a.cfg.ClusterGap {
			nClusters++
			end = s.lastBucket
		} else if s.lastBucket > end {
			end = s.lastBucket
		}
		cluster[s] = nClusters
		clusterSize[nClusters]++
	}
	// Root of each cluster: the signal with the earliest first alarm
	// (sigs is already in that order, so first hit wins).
	root := map[int]*signal{}
	for _, s := range sigs {
		if _, ok := root[cluster[s]]; !ok {
			root[cluster[s]] = s
		}
	}

	// LeadLag: within a cluster, a leads b when a's first alarm
	// precedes b's in a strict majority of the sessions seeing both.
	pairs := map[pairKey]*pairStat{}
	for _, st := range a.sessions {
		ord := make([]*signal, 0, len(st.series))
		for s := range st.series {
			ord = append(ord, s)
		}
		sort.Slice(ord, func(i, j int) bool {
			a, b := st.series[ord[i]].firstSeq, st.series[ord[j]].firstSeq
			if a != b {
				return a < b
			}
			if ord[i].fn != ord[j].fn {
				return ord[i].fn < ord[j].fn
			}
			return ord[i].pc < ord[j].pc
		})
		if len(ord) > 64 {
			ord = ord[:64] // bound the quadratic sweep; earliest signals matter most
		}
		for i := 0; i < len(ord); i++ {
			for j := i + 1; j < len(ord); j++ {
				x, y := ord[i], ord[j]
				if cluster[x] != cluster[y] {
					continue
				}
				fx, fy := st.series[x].firstSeq, st.series[y].firstSeq
				if fx >= fy {
					continue
				}
				k := pairKey{a: x, b: y}
				p := pairs[k]
				if p == nil {
					p = &pairStat{}
					pairs[k] = p
				}
				p.n++
				p.lag += fy - fx
			}
		}
	}
	leads := make(map[*signal][]leadTo)
	for _, x := range sigs {
		for _, y := range sigs {
			if x == y {
				continue
			}
			fwd := pairs[pairKey{a: x, b: y}]
			if fwd == nil {
				continue
			}
			var revN uint64
			if rev := pairs[pairKey{a: y, b: x}]; rev != nil {
				revN = rev.n
			}
			if fwd.n > revN {
				leads[x] = append(leads[x], leadTo{to: y, n: fwd.n, meanLag: fwd.lag / fwd.n})
			}
		}
	}

	// Score and rank.
	out := make([]Incident, 0, len(sigs))
	for _, s := range sigs {
		cid := cluster[s]
		isRoot := root[cid] == s
		nb := bursts[s]
		nl := len(leads[s])
		score := scoreVolume * math.Log2(1+float64(s.alarms))
		score += scoreBreadth * float64(s.sessions)
		score += scoreBurst * float64(min(nb, scoreBurstCap))
		score += scoreLead * float64(min(nl, scoreLeadCap))
		if isRoot && clusterSize[cid] > 1 {
			score += scoreRoot
		}

		in := Incident{
			Score:       score,
			Func:        s.fn,
			PC:          s.pc,
			Alarms:      s.alarms,
			Folded:      s.folded,
			Sessions:    s.sessions,
			FirstSeq:    s.firstSeq,
			LastSeq:     s.lastSeq,
			Bursts:      nb,
			Leads:       nl,
			Cluster:     cid,
			ClusterSize: clusterSize[cid],
			Root:        isRoot,
			Evidence:    a.evidence(s, nb, firstBurst[s], leads[s], clusterSize[cid], isRoot),
		}
		if s.ctx != nil {
			in.Context = contextSummary(s.ctx)
		}
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].FirstSeq != out[j].FirstSeq {
			return out[i].FirstSeq < out[j].FirstSeq
		}
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].PC < out[j].PC
	})
	for i := range out {
		out[i].ID = i + 1
	}
	a.met.open.Set(int64(len(out)))
	a.met.rankNs.Observe(uint64(nowNanos() - t0))
	return out
}

// evidence renders the human-readable summary lines for one signal.
func (a *Analyzer) evidence(s *signal, bursts int, firstBurst uint64, lto []leadTo, clusterN int, isRoot bool) []string {
	ev := make([]string, 0, 4)
	ev = append(ev, fmt.Sprintf("%d alarm(s) (%d folded into %d active bucket(s)) across %d session(s) at %s@%#x",
		s.alarms, s.folded, s.tuples, s.sessions, s.fn, s.pc))
	if bursts > 0 {
		ev = append(ev, fmt.Sprintf("%d alarm-rate change-point(s), first near seq %d",
			bursts, firstBurst*uint64(a.cfg.BucketEvents)))
	}
	if len(lto) > 0 {
		// Strongest (most-session, then deterministic key) edges first.
		sort.Slice(lto, func(i, j int) bool {
			if lto[i].n != lto[j].n {
				return lto[i].n > lto[j].n
			}
			if lto[i].to.fn != lto[j].to.fn {
				return lto[i].to.fn < lto[j].to.fn
			}
			return lto[i].to.pc < lto[j].to.pc
		})
		for i, l := range lto {
			if i == 2 {
				break
			}
			ev = append(ev, fmt.Sprintf("leads alarms at %s@%#x by ~%d events in %d session(s)",
				l.to.fn, l.to.pc, l.meanLag, l.n))
		}
	}
	if isRoot && clusterN > 1 {
		ev = append(ev, fmt.Sprintf("earliest onset of a %d-signal cluster", clusterN))
	}
	return ev
}

// contextSummary condenses a forensic capture for the incident record.
func contextSummary(c *ipds.AlarmContext) *Context {
	out := &Context{Seq: c.Alarm.Seq, Recorded: c.Recorded, Window: len(c.Recent)}
	if len(c.Stack) > 0 {
		out.Stack = make([]string, len(c.Stack))
		for i := range c.Stack {
			out.Stack[i] = c.Stack[i].Func
		}
	}
	return out
}
