// Package incident folds the daemon's alarm stream into a short ranked
// list of explainable incidents — the "alarm intelligence" stage that
// sits behind the serve path. A single persistent corruption in a hot
// loop raises tens of thousands of alarms; an operator needs the one
// incident underneath them, scored above the background drip.
//
// The pipeline has three layers, run incrementally as alarms stream in:
//
//   - Layer 1 — change-point detection: a one-sided CUSUM detector per
//     (signal, session) watches the alarm rate over sequence-number
//     buckets and counts sudden onsets (the signature of a seeded or
//     live corruption, as opposed to steady scattered noise).
//   - Layer 2 — dedup: a stable bloom filter per session folds repeat
//     (func, branch, bucket) tuples, so a million-alarm storm costs the
//     correlators one tuple per bucket, not one per alarm.
//   - Layer 3 — correlation: signals are clustered by overlapping
//     sequence ranges (TimeCluster) and ordered by cross-session
//     first-occurrence (LeadLag: "alarms at f lead alarms at g by ~N
//     events"), then scored into Incident records carrying their best
//     forensic AlarmContext and a human-readable evidence summary.
//
// Determinism contract: all analytics run on the branch-sequence axis
// (never wall clock), per-session state is keyed by the caller's
// session id but session ids never influence output, and every global
// aggregate is commutative (min/max/sum). Feeding the same per-session
// alarm streams in any interleaving therefore yields the same ranked
// incident list — the property that lets a live daemon's incidents be
// checked against an in-process replay.
package incident

import (
	"sync"
	"time"

	"repro/internal/ipds"
	"repro/internal/obs"
)

// Defaults for Config's zero values.
const (
	// DefaultBucketEvents is the sequence-bucket width the rate series
	// and dedup tuples are keyed by: small enough that a change-point
	// lands within a few buckets of its true onset, large enough that a
	// hot loop's alarms coalesce.
	DefaultBucketEvents = 512
	// DefaultMaxSignals bounds distinct (func, branch) signals tracked;
	// overflow is counted, never silently folded into a wrong signal.
	DefaultMaxSignals = 1024
	// DefaultClusterGap is the bucket gap TimeCluster still merges.
	DefaultClusterGap = 2
	// DefaultBloomCells sizes each session's stable bloom filter.
	DefaultBloomCells = 8192
)

// Config parameterises an Analyzer. The zero value of any field selects
// the documented default.
type Config struct {
	// BucketEvents is the width, in branch-sequence numbers, of one
	// rate/dedup bucket (default DefaultBucketEvents).
	BucketEvents int

	// MaxSignals bounds the distinct (func, branch PC) signals tracked
	// (default DefaultMaxSignals). Alarms for signals past the bound
	// are counted in Stats.Overflow and dropped from analytics.
	MaxSignals int

	// ClusterGap is the largest bucket gap between two signals' active
	// ranges that TimeCluster still merges (default DefaultClusterGap).
	ClusterGap uint64

	// BloomCells sizes each session's stable bloom dedup filter
	// (default DefaultBloomCells).
	BloomCells int

	// Reg receives incident_* metrics; nil disables (free).
	Reg *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BucketEvents <= 0 {
		c.BucketEvents = DefaultBucketEvents
	}
	if c.MaxSignals <= 0 {
		c.MaxSignals = DefaultMaxSignals
	}
	if c.ClusterGap == 0 {
		c.ClusterGap = DefaultClusterGap
	}
	if c.BloomCells <= 0 {
		c.BloomCells = DefaultBloomCells
	}
	return c
}

// AlarmEvent is one alarm as the analyzer consumes it: a value copy of
// the fields the analytics need, detached from any machine-owned
// memory, so producers can hand it across a queue without aliasing.
type AlarmEvent struct {
	Session uint64 // producer's session id (never surfaced in output)
	Seq     uint64 // branch-event sequence number within the session
	PC      uint64 // branch address
	Func    string // enclosing function name
	Taken   bool   // direction the stream claimed
}

// sigKey identifies one signal: a (function, branch PC) pair.
type sigKey struct {
	pc uint64
	fn string
}

// signal accumulates the cross-session aggregates of one (func, branch)
// alarm source. Every field is a commutative aggregate (sum/min/max),
// so session interleaving never changes a signal's final state.
type signal struct {
	fn string
	pc uint64

	alarms   uint64 // alarms observed
	folded   uint64 // alarms folded by dedup (repeat tuples)
	tuples   uint64 // dedup survivors: distinct (session, bucket) tuples
	sessions int    // sessions that saw this signal

	firstSeq    uint64
	lastSeq     uint64
	firstBucket uint64
	lastBucket  uint64

	bursts     int    // CUSUM change-points fired across sessions
	firstBurst uint64 // earliest bucket a change-point fired at

	// ctx is the best (earliest-sequence) forensic capture seen for
	// this signal, deep-copied so it never aliases producer memory.
	ctx    *ipds.AlarmContext
	ctxSeq uint64
}

// sessState is one session's private detector state: its dedup filter
// and its per-signal rate series.
type sessState struct {
	bloom  stableBloom
	series map[*signal]*series
}

// series is one (session, signal) alarm-rate series: the open bucket
// being accumulated and the CUSUM state over the closed ones.
type series struct {
	open     bool
	bucket   uint64
	count    float64
	firstSeq uint64 // first alarm of this signal in this session
	cu       cusum
}

// metrics is the incident_* instrument set; nil-safe like all of obs.
type metrics struct {
	alarms   *obs.Counter   // incident_alarms_total
	folds    *obs.Counter   // incident_dedup_folds_total
	bursts   *obs.Counter   // incident_changepoints_total
	overflow *obs.Counter   // incident_signal_overflow_total
	signals  *obs.Gauge     // incident_signals
	open     *obs.Gauge     // incident_open (at last ranking)
	rankNs   *obs.Histogram // incident_rank_ns (per Incidents call)
}

func newIncidentMetrics(r *obs.Registry) metrics {
	return metrics{
		alarms:   r.Counter("incident_alarms_total"),
		folds:    r.Counter("incident_dedup_folds_total"),
		bursts:   r.Counter("incident_changepoints_total"),
		overflow: r.Counter("incident_signal_overflow_total"),
		signals:  r.Gauge("incident_signals"),
		open:     r.Gauge("incident_open"),
		rankNs:   r.Histogram("incident_rank_ns"),
	}
}

// Analyzer is the streaming incident pipeline. One goroutine may feed
// Observe/ObserveContext while others call Incidents/Stats: a single
// mutex guards all state (the analyzer runs off the serve hot path, so
// a lock per alarm is cheap where an ipds.Machine's would not be).
type Analyzer struct {
	cfg Config
	met metrics

	mu       sync.Mutex
	signals  map[sigKey]*signal
	sessions map[uint64]*sessState
	alarms   uint64
	folded   uint64
	overflow uint64
}

// NewAnalyzer creates an empty analyzer.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{
		cfg:      cfg,
		met:      newIncidentMetrics(cfg.Reg),
		signals:  map[sigKey]*signal{},
		sessions: map[uint64]*sessState{},
	}
}

// Observe feeds one alarm through layers 1 and 2. Steady state (known
// signal, known session) is allocation-free.
func (a *Analyzer) Observe(ev AlarmEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.alarms++
	a.met.alarms.Inc()

	bucket := ev.Seq / uint64(a.cfg.BucketEvents)
	k := sigKey{pc: ev.PC, fn: ev.Func}
	sig := a.signals[k]
	if sig == nil {
		if len(a.signals) >= a.cfg.MaxSignals {
			a.overflow++
			a.met.overflow.Inc()
			return
		}
		sig = &signal{
			fn: ev.Func, pc: ev.PC,
			firstSeq: ev.Seq, lastSeq: ev.Seq,
			firstBucket: bucket, lastBucket: bucket,
			firstBurst: ^uint64(0),
			ctxSeq:     ^uint64(0),
		}
		a.signals[k] = sig
		a.met.signals.Set(int64(len(a.signals)))
	}
	sig.alarms++
	if ev.Seq < sig.firstSeq {
		sig.firstSeq = ev.Seq
	}
	if ev.Seq > sig.lastSeq {
		sig.lastSeq = ev.Seq
	}
	if bucket < sig.firstBucket {
		sig.firstBucket = bucket
	}
	if bucket > sig.lastBucket {
		sig.lastBucket = bucket
	}

	st := a.sessions[ev.Session]
	if st == nil {
		st = &sessState{series: map[*signal]*series{}}
		st.bloom.init(a.cfg.BloomCells)
		a.sessions[ev.Session] = st
	}
	sr := st.series[sig]
	if sr == nil {
		sr = &series{firstSeq: ev.Seq}
		st.series[sig] = sr
		sig.sessions++
	}

	// Layer 2: fold repeat (func, branch, bucket) tuples per session.
	if st.bloom.addFresh(tupleHash(ev.Func, ev.PC, bucket)) {
		sig.tuples++
	} else {
		sig.folded++
		a.folded++
		a.met.folds.Inc()
	}

	// Layer 1: close finished rate buckets into the CUSUM detector.
	// Alarms arrive per session in sequence order, so bucket advances
	// are monotone within a series.
	switch {
	case !sr.open:
		sr.open, sr.bucket, sr.count = true, bucket, 1
	case bucket == sr.bucket:
		sr.count++
	case bucket > sr.bucket:
		if sr.cu.feed(sr.count) {
			sig.bursts++
			if sr.bucket < sig.firstBurst {
				sig.firstBurst = sr.bucket
			}
			a.met.bursts.Inc()
		}
		// Quiet buckets between alarms relax the detector's baseline; a
		// bounded number of zero-feeds models an arbitrarily long gap
		// (the EWMA converges fast, so four zeros ≈ any number).
		if gap := bucket - sr.bucket - 1; gap > 0 {
			if gap > 4 {
				gap = 4
			}
			for ; gap > 0; gap-- {
				sr.cu.feed(0) // one-sided detector: a drop never fires
			}
		}
		sr.bucket, sr.count = bucket, 1
	}
}

// ObserveContext offers a forensic capture to the alarm's signal, which
// adopts it if it precedes the capture already held (earliest capture
// is the root-cause view; min is commutative, preserving determinism).
// The context is deep-copied; the caller keeps ownership of c.
func (a *Analyzer) ObserveContext(c *ipds.AlarmContext) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sig := a.signals[sigKey{pc: c.Alarm.PC, fn: c.Alarm.Func}]
	if sig == nil || c.Alarm.Seq >= sig.ctxSeq {
		return
	}
	if sig.ctx == nil {
		sig.ctx = &ipds.AlarmContext{}
	}
	c.CopyInto(sig.ctx)
	sig.ctxSeq = c.Alarm.Seq
}

// Stats is an analyzer-wide counter snapshot.
type Stats struct {
	Alarms   uint64 `json:"alarms"`   // alarms observed
	Folded   uint64 `json:"folded"`   // alarms folded by dedup
	Signals  int    `json:"signals"`  // distinct (func, branch) signals
	Overflow uint64 `json:"overflow"` // alarms dropped past MaxSignals
}

// Stats snapshots the analyzer's counters.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Alarms: a.alarms, Folded: a.folded, Signals: len(a.signals), Overflow: a.overflow}
}

// nowNanos is the ranking timer, swappable so nothing else in the
// package touches wall clock (the determinism contract).
var nowNanos = func() int64 { return time.Now().UnixNano() }
