package incident

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ipds"
)

func TestCUSUMFiresOnceOnStormOnset(t *testing.T) {
	var c cusum
	// Healthy stream: long quiet baseline.
	for i := 0; i < 50; i++ {
		if c.feed(0) {
			t.Fatal("fired on an all-zero series")
		}
	}
	// Storm onset: a loud bucket fires immediately...
	if !c.feed(100) {
		t.Fatal("did not fire on a 0 -> 100 step")
	}
	// ...and the re-baselined detector stays quiet on the new level.
	for i := 0; i < 50; i++ {
		if c.feed(100) {
			t.Fatalf("re-fired on sustained post-detection level (bucket %d)", i)
		}
	}
}

func TestCUSUMQuietOnDrip(t *testing.T) {
	var c cusum
	for i := 0; i < 1000; i++ {
		x := 0.0
		if i%3 == 0 {
			x = 1 // one scattered alarm every few buckets
		}
		if c.feed(x) {
			t.Fatalf("fired on background drip at bucket %d", i)
		}
	}
}

func TestCUSUMWouldFireDoesNotMutate(t *testing.T) {
	var c cusum
	c.feed(0)
	before := c
	if !c.wouldFire(100) {
		t.Fatal("wouldFire(100) = false after a zero baseline")
	}
	if c != before {
		t.Fatalf("wouldFire mutated the detector: %+v -> %+v", before, c)
	}
}

func TestBloomFoldsRepeatsAndDecays(t *testing.T) {
	var f stableBloom
	f.init(1024)
	h := tupleHash("f", 0x10, 3)
	if !f.addFresh(h) {
		t.Fatal("first insert reported duplicate")
	}
	if f.addFresh(h) {
		t.Fatal("immediate repeat reported fresh")
	}
	// Stability: after enough distinct inserts the old tuple decays out
	// and reads fresh again — the filter never saturates.
	for i := uint64(0); i < 10000; i++ {
		f.addFresh(tupleHash("g", 0x20, i))
	}
	if !f.addFresh(h) {
		t.Fatal("tuple survived 10000 younger inserts; filter is not decaying")
	}
}

// feed pushes a synthetic storm-plus-drip scenario: session-scoped drip
// alarms at a few library branches over the whole run, and a dense
// flood at act@0x99 from onset onward — the shape of one persistent
// corruption under background noise.
func feedScenario(a *Analyzer, sessions []uint64, interleave bool) {
	const (
		span  = 1 << 20 // total branch events per session
		onset = 1 << 19 // corruption point
	)
	mk := func(sess uint64) []AlarmEvent {
		var evs []AlarmEvent
		for seq := uint64(0); seq < span; seq++ {
			switch {
			case seq%9973 == 1:
				evs = append(evs, AlarmEvent{Session: sess, Seq: seq, PC: 0x10 + (seq/9973)%3, Func: "lib"})
			case seq >= onset && seq%8 == 0:
				evs = append(evs, AlarmEvent{Session: sess, Seq: seq, PC: 0x99, Func: "act", Taken: true})
			}
		}
		return evs
	}
	streams := make([][]AlarmEvent, len(sessions))
	for i, s := range sessions {
		streams[i] = mk(s)
	}
	if !interleave {
		for _, evs := range streams {
			for _, ev := range evs {
				a.Observe(ev)
			}
		}
		return
	}
	// Round-robin across sessions, preserving each session's order.
	for i := 0; ; i++ {
		advanced := false
		for _, evs := range streams {
			if i < len(evs) {
				a.Observe(evs[i])
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

func TestAnalyzerFoldsStormAndRanksRoot(t *testing.T) {
	a := NewAnalyzer(Config{})
	feedScenario(a, []uint64{1, 2, 3}, false)

	st := a.Stats()
	if st.Alarms < 10000 {
		t.Fatalf("scenario produced only %d alarms; not a storm", st.Alarms)
	}
	incs := a.Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents from a storm")
	}
	if got := float64(len(incs)) / float64(st.Alarms); got > 0.05 {
		t.Fatalf("fold reduction too weak: %d incidents from %d alarms (%.2f%%)", len(incs), st.Alarms, 100*got)
	}
	top := incs[0]
	if top.Func != "act" || top.PC != 0x99 {
		t.Fatalf("top incident is %s@%#x, want act@0x99; list: %+v", top.Func, top.PC, incs)
	}
	if top.ID != 1 || top.Sessions != 3 {
		t.Fatalf("top incident ID=%d Sessions=%d, want 1 and 3", top.ID, top.Sessions)
	}
	if top.Bursts == 0 {
		t.Fatal("storm onset raised no change-point")
	}
	if len(top.Evidence) == 0 || !strings.Contains(top.Evidence[0], "act@0x99") {
		t.Fatalf("evidence does not name the signal: %q", top.Evidence)
	}
	// The seeded onset is at seq 2^19; the top incident's range must
	// start there, not at the drip noise.
	if top.FirstSeq < 1<<19 || top.FirstSeq > 1<<19+16 {
		t.Fatalf("top incident FirstSeq = %d, want ~%d", top.FirstSeq, 1<<19)
	}
	// Drip signals must score clearly below the storm.
	if incs[1].Score >= top.Score {
		t.Fatalf("runner-up score %.1f not below top %.1f", incs[1].Score, top.Score)
	}
}

func TestAnalyzerDeterministicAcrossInterleavings(t *testing.T) {
	seq := NewAnalyzer(Config{})
	feedScenario(seq, []uint64{7, 8, 9}, false)
	rr := NewAnalyzer(Config{})
	// Different session ids AND different interleaving: neither may
	// influence the ranked output.
	feedScenario(rr, []uint64{100, 200, 300}, true)

	a, b := seq.Incidents(), rr.Incidents()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("incident lists diverge across interleavings:\nseq: %+v\nrr:  %+v", a, b)
	}
	if !reflect.DeepEqual(seq.Stats(), rr.Stats()) {
		t.Fatalf("stats diverge: %+v vs %+v", seq.Stats(), rr.Stats())
	}
	// Idempotence: ranking again changes nothing.
	if again := seq.Incidents(); !reflect.DeepEqual(a, again) {
		t.Fatal("Incidents() is not idempotent")
	}
}

func TestAnalyzerAdoptsEarliestContext(t *testing.T) {
	a := NewAnalyzer(Config{})
	mkCtx := func(seq uint64) *ipds.AlarmContext {
		return &ipds.AlarmContext{
			Alarm:    ipds.Alarm{Seq: seq, PC: 0x99, Func: "act"},
			Recorded: seq,
			Stack:    []ipds.StackEntry{{Base: 0x40, Func: "main"}, {Base: 0x90, Func: "act"}},
		}
	}
	a.Observe(AlarmEvent{Session: 1, Seq: 100, PC: 0x99, Func: "act"})
	a.Observe(AlarmEvent{Session: 1, Seq: 500, PC: 0x99, Func: "act"})
	a.ObserveContext(mkCtx(500))
	a.ObserveContext(mkCtx(100)) // earlier: adopted
	a.ObserveContext(mkCtx(900)) // later: ignored

	incs := a.Incidents()
	if len(incs) != 1 || incs[0].Context == nil {
		t.Fatalf("want one incident with context, got %+v", incs)
	}
	c := incs[0].Context
	if c.Seq != 100 || len(c.Stack) != 2 || c.Stack[1] != "act" {
		t.Fatalf("context = %+v, want the seq-100 capture with [main act] stack", c)
	}
}

func TestAnalyzerSignalOverflowCounted(t *testing.T) {
	a := NewAnalyzer(Config{MaxSignals: 2})
	a.Observe(AlarmEvent{Session: 1, Seq: 1, PC: 1, Func: "a"})
	a.Observe(AlarmEvent{Session: 1, Seq: 2, PC: 2, Func: "b"})
	a.Observe(AlarmEvent{Session: 1, Seq: 3, PC: 3, Func: "c"}) // past the bound
	st := a.Stats()
	if st.Signals != 2 || st.Overflow != 1 {
		t.Fatalf("stats = %+v, want 2 signals and 1 overflow", st)
	}
	if got := len(a.Incidents()); got != 2 {
		t.Fatalf("incidents = %d, want 2", got)
	}
}

// TestObserveSteadyStateAllocationFree pins the analyzer half of the
// serve-path allocation story: once a signal and session are warm,
// feeding alarms allocates nothing.
func TestObserveSteadyStateAllocationFree(t *testing.T) {
	a := NewAnalyzer(Config{})
	seq := uint64(0)
	obs := func() {
		seq += 3
		a.Observe(AlarmEvent{Session: 1, Seq: seq, PC: 0x99, Func: "act", Taken: true})
	}
	for i := 0; i < 4096; i++ {
		obs() // warm signal, session, bloom, series
	}
	if n := testing.AllocsPerRun(2000, obs); n != 0 {
		t.Fatalf("Observe allocates %.1f per alarm in steady state, want 0", n)
	}
}
