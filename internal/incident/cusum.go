package incident

// Layer 1: one-sided CUSUM change-point detection over a (session,
// signal) alarm-rate series. The series' samples are alarms-per-bucket
// counts on the sequence axis; the detector accumulates positive
// deviations from a running EWMA baseline and fires when the cumulative
// excess crosses an adaptive threshold. The baseline starts at zero —
// "no alarms" is the norm for a healthy stream — so a signal that is
// born loud (a persistent corruption entering a hot loop) fires on its
// very first bucket, while a steady drip of scattered noise never
// accumulates past the slack.

const (
	// cusumAlpha is the EWMA baseline weight: high enough to track a
	// new normal within a few buckets after a detection re-baselines.
	cusumAlpha = 0.2
	// cusumSlackFrac and cusumSlackMin set the per-sample slack
	// k = frac·mean + min: deviations below k never accumulate, which
	// is what keeps a 1-alarm-per-bucket drip silent forever.
	cusumSlackFrac = 0.5
	cusumSlackMin  = 1.0
	// cusumThreshFrac sets the firing threshold h = frac·(mean + 1):
	// the cumulative excess needed before a change-point is declared.
	cusumThreshFrac = 4.0
)

// cusum is the detector state: a running baseline and the accumulated
// positive deviation. The zero value is ready to use (baseline zero).
type cusum struct {
	mean float64 // EWMA baseline of the series
	s    float64 // accumulated positive deviation
}

// feed consumes one closed bucket's alarm count and reports whether a
// positive change-point fired. After a detection the detector
// re-baselines at the new level, so a sustained storm fires once, not
// once per bucket.
func (c *cusum) feed(x float64) bool {
	k := cusumSlackFrac*c.mean + cusumSlackMin
	h := cusumThreshFrac * (c.mean + 1)
	c.s += x - c.mean - k
	if c.s < 0 {
		c.s = 0
	}
	if c.s > h {
		c.s = 0
		c.mean = x
		return true
	}
	c.mean += cusumAlpha * (x - c.mean)
	return false
}

// wouldFire reports whether feeding x would fire, without mutating the
// detector — used at ranking time to score a still-open bucket.
func (c cusum) wouldFire(x float64) bool {
	return (&c).feed(x)
}
