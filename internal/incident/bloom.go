package incident

// Layer 2: stable bloom filter dedup (Deng & Rafiei, "Approximately
// Detecting Duplicates for Streaming Data using Stable Bloom Filters").
// A classic bloom filter saturates on an unbounded stream; the stable
// variant decays a few cells before every insert, so old tuples fade
// and the false-positive rate converges to a stable bound instead of
// climbing to one. Duplicates here are (func, branch, bucket) tuples:
// the second and later alarms of one signal within one bucket fold
// into the first, which is what collapses a storm by orders of
// magnitude before the correlators ever see it.
//
// Decay is a deterministic rotating cursor (not the randomized decay of
// the paper): the analyzer's output must be a pure function of the
// per-session alarm streams, and a per-session filter fed in stream
// order with deterministic decay is exactly that.

const (
	// bloomMax is the cell ceiling (cells are small saturating
	// counters; fresh inserts set their cells to this).
	bloomMax = 3
	// bloomProbes is the number of cells one tuple hashes to.
	bloomProbes = 3
	// bloomDecay is the number of cells decremented before each
	// insert; decay/probes fixes the filter's stable occupancy.
	bloomDecay = 4
)

// stableBloom is one session's dedup filter.
type stableBloom struct {
	cells []uint8
	cur   uint64 // deterministic decay cursor
}

// init sizes the filter; cells must be positive.
func (f *stableBloom) init(cells int) {
	f.cells = make([]uint8, cells)
}

// addFresh inserts a tuple hash and reports whether it was (probably)
// unseen: true = fresh, false = duplicate, folded. False positives
// (a fresh tuple reported duplicate) under-count a signal's distinct
// buckets slightly; false negatives fade in as old tuples decay, which
// is the stable trade the filter is chosen for.
func (f *stableBloom) addFresh(h uint64) bool {
	n := uint64(len(f.cells))
	for i := 0; i < bloomDecay; i++ {
		f.cur++
		if c := &f.cells[f.cur%n]; *c > 0 {
			*c--
		}
	}
	// Double hashing: probe i at h1 + i·h2 (h2 odd, so every probe
	// sequence cycles the whole table).
	h2 := (h>>33 | h<<31) | 1
	seen := true
	for i := uint64(0); i < bloomProbes; i++ {
		c := &f.cells[(h+i*h2)%n]
		if *c == 0 {
			seen = false
		}
		*c = bloomMax
	}
	return !seen
}

// tupleHash mixes a dedup tuple into one 64-bit hash (FNV-1a over the
// function name, then a splitmix64-style finisher over PC and bucket).
func tupleHash(fn string, pc, bucket uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(fn); i++ {
		h = (h ^ uint64(fn[i])) * 1099511628211
	}
	h ^= pc
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	h ^= bucket
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}
