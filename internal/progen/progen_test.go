package progen

import (
	"testing"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42)
	b := Generate(42)
	if a.Source != b.Source {
		t.Fatal("same seed produced different programs")
	}
	if len(a.Input) != len(b.Input) {
		t.Fatal("inputs differ")
	}
	c := Generate(43)
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := Generate(seed)
		if _, err := pipeline.Compile(p.Source, ir.DefaultOptions); err != nil {
			t.Fatalf("seed %d: compile failed: %v\n--- source ---\n%s", seed, err, p.Source)
		}
	}
}

// TestZeroFalsePositives is the repository's strongest property test:
// for arbitrary generated programs and inputs, an untampered run under
// the IPDS runtime must never raise an alarm. Any alarm here is an
// unsound correlation — a bug in the analysis, not in the program.
func TestZeroFalsePositives(t *testing.T) {
	seeds := int64(250)
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v := vm.New(art.Prog, vm.DefaultConfig, p.Input)
		m := ipds.New(art.Image, ipds.DefaultConfig)
		ipds.Attach(v, m)
		res := v.Run()
		if res.Status == vm.Faulted {
			t.Fatalf("seed %d: generated program faulted: %v\n--- source ---\n%s",
				seed, res.Fault, p.Source)
		}
		if len(m.Alarms()) > 0 {
			t.Fatalf("seed %d: FALSE POSITIVE %v\n--- source ---\n%s",
				seed, m.Alarms()[0], p.Source)
		}
	}
}

// TestZeroFalsePositivesUnderAblations re-checks the invariant for
// every analysis variant and pipeline option: weakening the analysis
// must lose detection only, never soundness.
func TestZeroFalsePositivesUnderAblations(t *testing.T) {
	opts := []ir.Options{
		{},
		{Forwarding: true},
		{Forwarding: true, RegionPromotion: true},
		{Forwarding: true, InlineSmall: true},
	}
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed)
		for _, o := range opts {
			art, err := pipeline.Compile(p.Source, o)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, o, err)
			}
			v := vm.New(art.Prog, vm.DefaultConfig, p.Input)
			m := ipds.New(art.Image, ipds.DefaultConfig)
			ipds.Attach(v, m)
			res := v.Run()
			if res.Status == vm.Faulted {
				t.Fatalf("seed %d opts %+v: fault %v", seed, o, res.Fault)
			}
			if len(m.Alarms()) > 0 {
				t.Fatalf("seed %d opts %+v: FALSE POSITIVE %v\n%s",
					seed, o, m.Alarms()[0], p.Source)
			}
		}
	}
}

// TestGeneratedRunsDeterministic: same program, same input, same
// observable behaviour.
func TestGeneratedRunsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		run := func() vm.Result {
			return vm.New(art.Prog, vm.DefaultConfig, p.Input).Run()
		}
		a, b := run(), run()
		if a.ExitCode != b.ExitCode || a.Steps != b.Steps || len(a.Output) != len(b.Output) {
			t.Fatalf("seed %d: non-deterministic execution", seed)
		}
	}
}

// TestGeneratedProgramsHaveCorrelations: the generator should routinely
// produce programs the analysis finds something in, or the fuzzing is
// toothless.
func TestGeneratedProgramsHaveCorrelations(t *testing.T) {
	withChecks := 0
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		for _, ft := range art.Tables.Tables {
			if ft.NumChecked() > 0 {
				withChecks++
				break
			}
		}
	}
	if withChecks < 30 {
		t.Errorf("only %d/50 generated programs have checked branches", withChecks)
	}
}

// TestGeneratedProgramsTerminate: bounded loops and a DAG call graph
// guarantee termination well under the step budget.
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed)
		art, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		cfg := vm.DefaultConfig
		cfg.MaxSteps = 2_000_000
		res := vm.New(art.Prog, cfg, p.Input).Run()
		if res.Status == vm.StepLimit {
			t.Fatalf("seed %d: generated program did not terminate\n%s", seed, p.Source)
		}
	}
}

// TestInliningPreservesSemantics: for random programs, the inlined
// build must produce exactly the same observable behaviour as the
// plain build.
func TestInliningPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		p := Generate(seed)
		plain, err := pipeline.Compile(p.Source, ir.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		inlined, err := pipeline.Compile(p.Source,
			ir.Options{Forwarding: true, InlineSmall: true})
		if err != nil {
			t.Fatal(err)
		}
		a := vm.New(plain.Prog, vm.DefaultConfig, p.Input).Run()
		b := vm.New(inlined.Prog, vm.DefaultConfig, p.Input).Run()
		if a.Status != b.Status || a.ExitCode != b.ExitCode {
			t.Fatalf("seed %d: semantics changed: %v/%d vs %v/%d\n%s",
				seed, a.Status, a.ExitCode, b.Status, b.ExitCode, p.Source)
		}
		if len(a.Output) != len(b.Output) {
			t.Fatalf("seed %d: output length changed", seed)
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("seed %d: output[%d] %q vs %q", seed, i, a.Output[i], b.Output[i])
			}
		}
	}
}

func TestGenerateWithCustomConfig(t *testing.T) {
	cfg := Config{
		MaxHelpers: 1, MaxGlobals: 2, MaxLocals: 2,
		MaxStmts: 3, MaxDepth: 2, MaxExprDepth: 2, InputLines: 8,
	}
	p := GenerateWith(7, cfg)
	if len(p.Input) != 8 {
		t.Errorf("input lines = %d", len(p.Input))
	}
	if _, err := pipeline.Compile(p.Source, ir.DefaultOptions); err != nil {
		t.Fatalf("custom config program invalid: %v\n%s", err, p.Source)
	}
}
