// Package progen generates random, valid, terminating MiniC programs
// together with input sessions. It exists to property-test the whole
// pipeline: for any generated program and any input, a clean run under
// the IPDS runtime must never raise an alarm (the paper's zero
// false-positive guarantee), the compiler must never reject or panic,
// and execution must be deterministic.
//
// Generated programs deliberately concentrate on the constructs the
// correlation analysis reasons about: scalar globals and locals tested
// against constants at multiple sites, redefinitions on some paths,
// helper calls that may or may not write the tested state, pointer
// writes through &x, and bounded loops.
package progen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Config bounds the generator.
type Config struct {
	MaxHelpers   int // helper functions in addition to main
	MaxGlobals   int
	MaxLocals    int
	MaxStmts     int // statements per block
	MaxDepth     int // statement nesting
	MaxExprDepth int
	InputLines   int
}

// DefaultConfig generates mid-sized programs (a few dozen branches).
var DefaultConfig = Config{
	MaxHelpers:   4,
	MaxGlobals:   5,
	MaxLocals:    5,
	MaxStmts:     6,
	MaxDepth:     3,
	MaxExprDepth: 3,
	InputLines:   64,
}

// Program is one generated test case.
type Program struct {
	Seed   int64
	Source string
	Input  []string
}

// Generate builds a program from a seed with the default bounds.
func Generate(seed int64) Program { return GenerateWith(seed, DefaultConfig) }

// GenerateWith builds a program from a seed and explicit bounds.
func GenerateWith(seed int64, cfg Config) Program {
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
	}
	src := g.program()
	input := make([]string, cfg.InputLines)
	for i := range input {
		input[i] = strconv.Itoa(g.rng.Intn(21) - 10)
	}
	return Program{Seed: seed, Source: src, Input: input}
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder

	globals      []string
	helpers      []helper
	structFields int

	// current function state
	locals       []string
	frozen       map[string]bool // loop counters: never reassigned
	indent       int
	callableFrom int // helpers with index >= this may be called (no recursion)
}

type helper struct {
	name    string
	params  int
	returns bool
	// writesGlobals records whether the body may store to globals,
	// making calls to it correlation kills.
	writesGlobals bool
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) program() string {
	// A session-style struct: its fields behave exactly like scalars
	// under the field-splitting lowering, so the generator uses them
	// as ordinary variables in main.
	g.structFields = 2 + g.rng.Intn(3)
	var fields []string
	for i := 0; i < g.structFields; i++ {
		fields = append(fields, fmt.Sprintf("int f%d;", i))
	}
	g.w("struct St { %s };", strings.Join(fields, " "))

	nGlobals := 2 + g.rng.Intn(g.cfg.MaxGlobals)
	for i := 0; i < nGlobals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		if g.rng.Intn(2) == 0 {
			g.w("int %s = %d;", name, g.rng.Intn(19)-9)
		} else {
			g.w("int %s;", name)
		}
	}
	// A fixed pointer-writing helper exercises the alias analysis.
	g.w("void poke(int* p, int v) { *p = v; }")

	nHelpers := 1 + g.rng.Intn(g.cfg.MaxHelpers)
	for i := 0; i < nHelpers; i++ {
		g.helper(i, nHelpers)
	}
	g.mainFunc()
	return g.b.String()
}

func (g *gen) helper(idx, total int) {
	h := helper{
		name:    fmt.Sprintf("h%d", idx),
		params:  g.rng.Intn(3),
		returns: g.rng.Intn(3) > 0,
	}
	// Helpers may only call later helpers: the call graph is a DAG.
	g.callableFrom = idx + 1

	ret := "void"
	if h.returns {
		ret = "int"
	}
	var params []string
	g.locals = nil
	g.frozen = map[string]bool{}
	for p := 0; p < h.params; p++ {
		name := fmt.Sprintf("p%d", p)
		params = append(params, "int "+name)
		g.locals = append(g.locals, name)
	}
	g.helpers = append(g.helpers, h)

	g.w("%s %s(%s) {", ret, h.name, strings.Join(params, ", "))
	g.indent++
	wrote := g.block(g.cfg.MaxDepth)
	g.helpers[idx].writesGlobals = wrote
	if h.returns {
		g.w("return %s;", g.expr(1))
	}
	g.indent--
	g.w("}")
}

func (g *gen) mainFunc() {
	g.callableFrom = 0
	g.locals = nil
	g.frozen = map[string]bool{}
	g.w("int main() {")
	g.indent++
	nLocals := 2 + g.rng.Intn(g.cfg.MaxLocals)
	for i := 0; i < nLocals; i++ {
		name := fmt.Sprintf("v%d", i)
		g.w("int %s;", name)
		g.locals = append(g.locals, name)
	}
	// Struct fields join the variable pool like ordinary scalars.
	g.w("struct St st;")
	for i := 0; i < g.structFields; i++ {
		f := fmt.Sprintf("st.f%d", i)
		g.w("%s = %d;", f, g.rng.Intn(9)-4)
		g.locals = append(g.locals, f)
	}
	// Seed locals with input so campaigns vary per run.
	for _, l := range g.locals[:min(2, len(g.locals))] {
		g.w("%s = read_int();", l)
	}
	g.block(g.cfg.MaxDepth)
	g.w("return %s;", g.expr(1))
	g.indent--
	g.w("}")
}

// block emits 1..MaxStmts statements; reports whether any may write a
// global (directly or through a callee).
func (g *gen) block(depth int) bool {
	wrote := false
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		if g.stmt(depth) {
			wrote = true
		}
	}
	return wrote
}

func (g *gen) stmt(depth int) bool {
	choice := g.rng.Intn(10)
	if depth <= 0 && choice >= 4 && choice <= 6 {
		choice = 0 // no further nesting
	}
	switch choice {
	case 0, 1, 2: // assignment, range-bounded so arithmetic never
		// overflows (signed overflow is UB in MiniC as in C, and would
		// void the affine analysis' no-wrap assumption)
		v := g.lvalue()
		if v == "" {
			return false
		}
		g.w("%s = (%s) %% %d;", v, g.expr(g.cfg.MaxExprDepth), 41+g.rng.Intn(52))
		return strings.HasPrefix(v, "g")
	case 3: // read fresh input
		v := g.lvalue()
		if v == "" {
			return false
		}
		g.w("%s = read_int();", v)
		return strings.HasPrefix(v, "g")
	case 4: // if / if-else
		g.w("if (%s) {", g.cond())
		g.indent++
		wrote := g.block(depth - 1)
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			if g.block(depth - 1) {
				wrote = true
			}
			g.indent--
		}
		g.w("}")
		return wrote
	case 5: // bounded counting loop with a frozen counter
		cnt := fmt.Sprintf("i%d", len(g.locals))
		bound := 1 + g.rng.Intn(5)
		g.w("for (int %s = 0; %s < %d; %s++) {", cnt, cnt, bound, cnt)
		g.locals = append(g.locals, cnt)
		g.frozen[cnt] = true
		g.indent++
		wrote := g.block(depth - 1)
		g.indent--
		g.w("}")
		// The counter's scope ends with the loop.
		g.locals = g.locals[:len(g.locals)-1]
		delete(g.frozen, cnt)
		return wrote
	case 6: // pointer write through the fixed helper
		v := g.addressable()
		if v == "" {
			return false
		}
		g.w("poke(&%s, %s);", v, g.expr(1))
		return strings.HasPrefix(v, "g")
	case 7: // call a helper (respecting the DAG)
		h := g.pickHelper()
		if h == nil {
			return false
		}
		args := make([]string, h.params)
		for i := range args {
			args[i] = g.expr(1)
		}
		call := fmt.Sprintf("%s(%s)", h.name, strings.Join(args, ", "))
		if h.returns && g.rng.Intn(2) == 0 {
			if v := g.lvalue(); v != "" {
				g.w("%s = %s;", v, call)
				return strings.HasPrefix(v, "g") || h.writesGlobals
			}
		}
		g.w("%s;", call)
		return h.writesGlobals
	case 8: // output, or occasionally a switch dispatch
		if depth > 0 && g.rng.Intn(3) == 0 {
			return g.switchStmt(depth)
		}
		g.w("print_int(%s);", g.expr(1))
		return false
	default: // correlated double-check pattern (the paper's bread and butter)
		v := g.anyVar()
		if v == "" {
			return false
		}
		k := g.rng.Intn(15) - 7
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		g.w("if (%s %s %d) {", v, op, k)
		g.indent++
		g.w("print_int(%d);", g.rng.Intn(100))
		g.indent--
		g.w("}")
		g.w("if (%s %s %d) {", v, op, k+g.rng.Intn(5))
		g.indent++
		g.w("print_int(%d);", g.rng.Intn(100))
		g.indent--
		g.w("}")
		return false
	}
}

// switchStmt emits a switch over a variable with distinct constant
// labels, random break/fallthrough, and an optional default.
func (g *gen) switchStmt(depth int) bool {
	v := g.anyVar()
	if v == "" {
		return false
	}
	wrote := false
	g.w("switch (%s) {", v)
	n := 2 + g.rng.Intn(3)
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		label := g.rng.Intn(21) - 10
		for used[label] {
			label++
		}
		used[label] = true
		g.w("case %d:", label)
		g.indent++
		if g.block(depth - 1) {
			wrote = true
		}
		if g.rng.Intn(3) > 0 { // mostly break, sometimes fall through
			g.w("break;")
		}
		g.indent--
	}
	if g.rng.Intn(2) == 0 {
		g.w("default:")
		g.indent++
		g.w("print_int(%d);", g.rng.Intn(50))
		g.indent--
	}
	g.w("}")
	return wrote
}

// lvalue picks an assignable variable (never a frozen loop counter).
func (g *gen) lvalue() string {
	candidates := g.mutableVars()
	if len(candidates) == 0 {
		return ""
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// addressable picks a variable whose address may be taken.
func (g *gen) addressable() string { return g.lvalue() }

func (g *gen) mutableVars() []string {
	var out []string
	for _, v := range g.locals {
		if !g.frozen[v] {
			out = append(out, v)
		}
	}
	out = append(out, g.globals...)
	return out
}

func (g *gen) anyVar() string {
	all := append(append([]string{}, g.locals...), g.globals...)
	if len(all) == 0 {
		return ""
	}
	return all[g.rng.Intn(len(all))]
}

func (g *gen) pickHelper() *helper {
	if g.callableFrom >= len(g.helpers) {
		return nil
	}
	idx := g.callableFrom + g.rng.Intn(len(g.helpers)-g.callableFrom)
	return &g.helpers[idx]
}

func (g *gen) cond() string {
	v := g.anyVar()
	if v == "" {
		return "1"
	}
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	if g.rng.Intn(4) == 0 {
		w := g.anyVar()
		conj := []string{"&&", "||"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s %s %d %s %s != %d",
			v, op, g.rng.Intn(15)-7, conj, w, g.rng.Intn(15)-7)
	}
	return fmt.Sprintf("%s %s %d", v, op, g.rng.Intn(15)-7)
}

// expr emits a side-effect-free integer expression (no division: the
// generator guarantees fault-free arithmetic).
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			if v := g.anyVar(); v != "" {
				return v
			}
		}
		return strconv.Itoa(g.rng.Intn(21) - 10)
	}
	op := []string{"+", "-", "*"}[g.rng.Intn(3)]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
