package tcache

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/tables"
)

// Blob layout (little endian). One blob is one function's fully
// compiled table set plus the analysis diagnostics needed to rebuild a
// core.FuncTables against an identical lowered function:
//
//	u32 magic "TCB1"
//	u32 len(FuncImage record)   || tables.MarshalFunc bytes
//	u32 nChecked                || checked branch instruction IDs
//	u32 nEvents                 || per event: u32 brID, u32 dir,
//	                               u32 nUpdates × (u32 targetID, u32 act)
//	u32 nCorrelations           || per correlation: u32 kind, u32 srcID,
//	                               u32 dir, u32 viaID, u32 tgtID,
//	                               u32 act, u64 obj
//
// Instruction IDs index ir.Func.Instrs; rehydration is only valid
// against a function whose KeyFunc matches the one the blob was stored
// under, which pins the instruction numbering.
const blobMagic = uint32(0x31424354) // "TCB1"

// EncodeBlob serialises one function's compile results into a cache
// blob. Event and correlation order is canonicalised so identical
// inputs produce byte-identical blobs.
func EncodeBlob(fi *tables.FuncImage, ft *core.FuncTables) []byte {
	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	u32(blobMagic)
	rec := tables.MarshalFunc(fi)
	u32(uint32(len(rec)))
	buf = append(buf, rec...)

	checked := make([]int, 0, len(ft.Checked))
	for br := range ft.Checked {
		checked = append(checked, br.ID)
	}
	sort.Ints(checked)
	u32(uint32(len(checked)))
	for _, id := range checked {
		u32(uint32(id))
	}

	evs := make([]core.Event, 0, len(ft.Actions))
	for ev := range ft.Actions {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Br.ID != evs[j].Br.ID {
			return evs[i].Br.ID < evs[j].Br.ID
		}
		return evs[i].Dir < evs[j].Dir
	})
	u32(uint32(len(evs)))
	for _, ev := range evs {
		u32(uint32(ev.Br.ID))
		u32(uint32(ev.Dir))
		ups := ft.Actions[ev]
		u32(uint32(len(ups)))
		for _, u := range ups {
			u32(uint32(u.Target.ID))
			u32(uint32(u.Act))
		}
	}

	u32(uint32(len(ft.Correlations)))
	for _, c := range ft.Correlations {
		u32(uint32(c.Kind))
		u32(uint32(c.Source.ID))
		u32(uint32(c.Dir))
		u32(uint32(c.Via.ID))
		u32(uint32(c.Target.ID))
		u32(uint32(c.Act))
		u64(uint64(c.Obj))
	}
	return buf
}

// DecodeBlob rehydrates a cache blob against fn, reconstructing both
// the encoded FuncImage and the FuncTables diagnostics. fn must be the
// function the blob was keyed for (same KeyFunc): instruction IDs in
// the blob are resolved through fn.Instrs. Any structural mismatch
// returns an error, which callers treat as a cache miss.
func DecodeBlob(blob []byte, fn *ir.Func) (*tables.FuncImage, *core.FuncTables, error) {
	off := 0
	fail := func(what string) error { return fmt.Errorf("tcache: truncated blob at %s", what) }
	u32 := func() (uint32, bool) {
		if off+4 > len(blob) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(blob[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(blob) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(blob[off:])
		off += 8
		return v, true
	}
	instr := func(id uint32) (*ir.Instr, error) {
		if int(id) >= len(fn.Instrs) {
			return nil, fmt.Errorf("tcache: instruction id %d out of range for %s", id, fn.Name)
		}
		return fn.Instrs[id], nil
	}

	if m, ok := u32(); !ok || m != blobMagic {
		return nil, nil, fmt.Errorf("tcache: bad blob magic")
	}
	recLen, ok := u32()
	if !ok || off+int(recLen) > len(blob) {
		return nil, nil, fail("image record")
	}
	fi, n, err := tables.UnmarshalFunc(blob[off : off+int(recLen)])
	if err != nil {
		return nil, nil, err
	}
	if n != int(recLen) {
		return nil, nil, fmt.Errorf("tcache: image record length mismatch")
	}
	off += int(recLen)

	ft := &core.FuncTables{
		Fn:       fn,
		Branches: fn.Branches(),
		Checked:  map[*ir.Instr]bool{},
		Actions:  map[core.Event][]core.Update{},
	}

	nChecked, ok := u32()
	if !ok {
		return nil, nil, fail("checked count")
	}
	for i := uint32(0); i < nChecked; i++ {
		id, ok := u32()
		if !ok {
			return nil, nil, fail("checked id")
		}
		br, err := instr(id)
		if err != nil {
			return nil, nil, err
		}
		ft.Checked[br] = true
	}

	nEvents, ok := u32()
	if !ok {
		return nil, nil, fail("event count")
	}
	for i := uint32(0); i < nEvents; i++ {
		brID, ok1 := u32()
		dir, ok2 := u32()
		nUps, ok3 := u32()
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, fail("event header")
		}
		br, err := instr(brID)
		if err != nil {
			return nil, nil, err
		}
		ev := core.Event{Br: br, Dir: cfg.Direction(dir)}
		ups := make([]core.Update, 0, nUps)
		for j := uint32(0); j < nUps; j++ {
			tgtID, ok1 := u32()
			act, ok2 := u32()
			if !ok1 || !ok2 {
				return nil, nil, fail("update")
			}
			tgt, err := instr(tgtID)
			if err != nil {
				return nil, nil, err
			}
			ups = append(ups, core.Update{Target: tgt, Act: core.Action(act)})
		}
		ft.Actions[ev] = ups
	}

	nCorr, ok := u32()
	if !ok {
		return nil, nil, fail("correlation count")
	}
	for i := uint32(0); i < nCorr; i++ {
		kind, ok1 := u32()
		srcID, ok2 := u32()
		dir, ok3 := u32()
		viaID, ok4 := u32()
		tgtID, ok5 := u32()
		act, ok6 := u32()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
			return nil, nil, fail("correlation")
		}
		obj, ok7 := u64()
		if !ok7 {
			return nil, nil, fail("correlation obj")
		}
		src, err := instr(srcID)
		if err != nil {
			return nil, nil, err
		}
		via, err := instr(viaID)
		if err != nil {
			return nil, nil, err
		}
		tgt, err := instr(tgtID)
		if err != nil {
			return nil, nil, err
		}
		ft.Correlations = append(ft.Correlations, core.Correlation{
			Kind: core.CorrKind(kind), Source: src, Dir: cfg.Direction(dir),
			Via: via, Target: tgt, Act: core.Action(act), Obj: ir.ObjID(obj),
		})
	}
	return fi, ft, nil
}
