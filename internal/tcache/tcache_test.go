package tcache

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/tables"
)

// lower compiles MiniC source up to the alias phase (the cache's
// inputs) without importing the pipeline (which imports tcache).
func lower(t *testing.T, src string) (*ir.Program, *alias.Analysis) {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := minic.Check(file)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	return prog, alias.Analyze(prog)
}

const src1 = `
int g;
int main() {
	g = read_int();
	if (g < 5) { print_int(1); }
	if (g < 9) { return 1; }
	return 0;
}`

func TestKeyFuncStability(t *testing.T) {
	prog1, al1 := lower(t, src1)
	prog2, al2 := lower(t, src1)
	fn1, fn2 := prog1.ByName["main"], prog2.ByName["main"]
	if KeyFunc(al1, fn1, core.Config{}) != KeyFunc(al2, fn2, core.Config{}) {
		t.Error("identical source must produce identical keys")
	}
	// A different analysis configuration must change the key: the
	// ablation toggles change the resulting tables.
	if KeyFunc(al1, fn1, core.Config{}) == KeyFunc(al1, fn1, core.Config{SelfOnly: true}) {
		t.Error("core.Config must be part of the key")
	}
	// An edit to the branch structure must change the key.
	prog3, al3 := lower(t, `
int g;
int main() {
	g = read_int();
	if (g < 5) { print_int(1); }
	if (g < 8) { return 1; }
	return 0;
}`)
	if KeyFunc(al1, fn1, core.Config{}) == KeyFunc(al3, prog3.ByName["main"], core.Config{}) {
		t.Error("edited function must change its key")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	prog, al := lower(t, src1)
	fn := prog.ByName["main"]
	ft := core.BuildFunc(prog, al, fn, core.Config{})
	fi, err := tables.EncodeFunc(ft)
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeBlob(fi, ft)
	// Canonical serialisation: encoding twice is byte-identical.
	if !bytes.Equal(blob, EncodeBlob(fi, ft)) {
		t.Fatal("EncodeBlob is not deterministic")
	}

	gotFi, gotFt, err := DecodeBlob(blob, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tables.MarshalFunc(gotFi), tables.MarshalFunc(fi)) {
		t.Error("FuncImage did not survive the round trip")
	}
	if gotFt.NumChecked() != ft.NumChecked() || gotFt.NumActions() != ft.NumActions() {
		t.Errorf("FuncTables: got %d/%d checked/actions, want %d/%d",
			gotFt.NumChecked(), gotFt.NumActions(), ft.NumChecked(), ft.NumActions())
	}
	if len(gotFt.Correlations) != len(ft.Correlations) {
		t.Fatalf("got %d correlations, want %d", len(gotFt.Correlations), len(ft.Correlations))
	}
	for i := range ft.Correlations {
		if gotFt.Correlations[i].String() != ft.Correlations[i].String() {
			t.Errorf("correlation %d: got %s, want %s", i,
				gotFt.Correlations[i], ft.Correlations[i])
		}
	}

	// Corruption must be detected, not mis-decoded.
	for _, cut := range []int{1, 4, 10, len(blob) - 1} {
		if _, _, err := DecodeBlob(blob[:cut], fn); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	k := func(b byte) Key { var k Key; k[0] = b; return k }
	c.Put(k(1), []byte{1})
	c.Put(k(2), []byte{2})
	c.Get(k(1)) // refresh 1: 2 is now the LRU victim
	c.Put(k(3), []byte{3})
	if _, ok := c.Get(k(2)); ok {
		t.Error("LRU victim survived eviction")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Error("new entry missing")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var key Key
	key[0] = 7
	c1.Put(key, []byte("blob"))

	c2, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := c2.Get(key)
	if !ok || string(blob) != "blob" {
		t.Fatalf("disk tier miss: ok=%v blob=%q", ok, blob)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.MemHits != 0 {
		t.Errorf("stats %+v, want 1 disk hit", s)
	}
	// Promoted to memory: a second Get is a memory hit.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Errorf("stats %+v, want 1 mem hit after promotion", s)
	}

	// A corrupt or unrelated file in the directory is ignored.
	if err := os.WriteFile(dir+"/garbage", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var other Key
	other[0] = 8
	if _, ok := c2.Get(other); ok {
		t.Error("unexpected hit for absent key")
	}
}

func TestCacheNilIsNoOp(t *testing.T) {
	var c *Cache
	var key Key
	if _, ok := c.Get(key); ok {
		t.Error("nil cache must miss")
	}
	c.Put(key, []byte("x")) // must not panic
	c.Instrument(obs.NewRegistry())
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache must be empty")
	}
}

// TestCacheConcurrentBlobRoundTrip is the registry's usage shape: the
// fleet tier makes the disk cache multi-reader for real — one
// goroutine persisting fetched images while peers' requests read them
// back concurrently. Image-sized blobs are stored under their own
// content address (KeyOf, exactly how ImageStore keys whole images)
// with an LRU far smaller than the key set, so most Gets fall through
// to the disk tier; every returned blob must still hash to the key
// that fetched it — a torn read, partial rename or cross-key mixup
// would show up as a content mismatch.
func TestCacheConcurrentBlobRoundTrip(t *testing.T) {
	const (
		goroutines = 8
		keys       = 24
		rounds     = 40
		blobSize   = 4 << 10
	)
	c, err := New(4, t.TempDir()) // LRU holds 4 of 24 keys: disk tier does the work
	if err != nil {
		t.Fatal(err)
	}
	blobs := make([][]byte, keys)
	addrs := make([]Key, keys)
	for i := range blobs {
		b := make([]byte, blobSize)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		blobs[i] = b
		addrs[i] = KeyOf(b)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g*rounds + r*7) % keys
				if blob, ok := c.Get(addrs[i]); ok {
					if KeyOf(blob) != addrs[i] {
						t.Errorf("goroutine %d round %d: blob %d fails its own content address", g, r, i)
						return
					}
				} else {
					c.Put(addrs[i], blobs[i])
				}
			}
		}(g)
	}
	wg.Wait()
	// Everything written must now round-trip (disk tier retains all
	// keys regardless of LRU pressure).
	for i, k := range addrs {
		blob, ok := c.Get(k)
		if !ok {
			continue // never written by the interleaving: legal
		}
		if KeyOf(blob) != k {
			t.Fatalf("final sweep: blob %d fails its content address", i)
		}
	}
}

func TestCacheConcurrency(t *testing.T) {
	c, err := New(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var k Key
				k[0] = byte(i % 16)
				if blob, ok := c.Get(k); ok {
					if len(blob) != 1 || blob[0] != k[0] {
						t.Errorf("corrupt blob for key %d", k[0])
						return
					}
				} else {
					c.Put(k, []byte{k[0]})
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Error("no traffic recorded")
	}
	if got := reg.Counter("tcache_hits_total").Value(); got != s.Hits {
		t.Errorf("registry hits %d != stats hits %d", got, s.Hits)
	}
}
