package tcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
)

// Key is a content address: a SHA-256 over everything the per-function
// table construction depends on.
type Key [sha256.Size]byte

// String renders the key as hex (diagnostics).
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// KeyOf addresses an arbitrary blob by content. The serving layer uses
// it to store whole marshalled table images in the same cache that
// holds per-function blobs, keyed by tables.Image.Hash — a disk-backed
// cache then lets a restarted daemon resolve a reconnecting client's
// image hash without recompiling anything.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// keyVersion invalidates every existing cache entry whenever the key
// derivation or the blob format changes incompatibly.
const keyVersion = 2

// keyBuf accumulates the keyed content before one bulk hash write.
// Length-prefixing every string and a fixed tag byte per record keep
// the encoding prefix-free, so distinct inputs cannot collide by
// concatenation.
type keyBuf struct{ b []byte }

func (k *keyBuf) u64(v uint64) { k.b = binary.LittleEndian.AppendUint64(k.b, v) }
func (k *keyBuf) i64(v int64)  { k.u64(uint64(v)) }
func (k *keyBuf) str(s string) { k.u64(uint64(len(s))); k.b = append(k.b, s...) }
func (k *keyBuf) tag(t byte)   { k.b = append(k.b, t) }

// KeyFunc computes fn's content address. It covers, in order:
//
//   - the analysis configuration (ablation toggles change the tables),
//   - the function's lowered IR — name, base address, register count
//     and a binary encoding of every instruction: opcode, operands,
//     condition, immediate, memory operand, callee and argument
//     registers, block membership and branch edges, and the PCs the
//     hash search parameterises over,
//   - the alias slice: for every load, store and call of the function,
//     the facts the Figure 5 construction queries (unique load object,
//     may-store set, call write summary),
//   - the shape of every memory object those facts mention (kind, size,
//     scalarness, address-taken), since correlation soundness reads
//     them.
//
// The encoding is equivalent to hashing fn.Dump() but avoids the
// fmt-formatted dump string, which profiles as a quarter of a
// warm-cache compile. Object IDs are program-global, so edits that
// renumber objects (for example adding a global) conservatively miss
// for every function that names one — correctness never depends on a
// hit.
func KeyFunc(al *alias.Analysis, fn *ir.Func, conf core.Config) Key {
	kb := &keyBuf{b: make([]byte, 0, 64*len(fn.Instrs)+256)}
	kb.str(fmt.Sprintf("tcache/v%d conf=%v", keyVersion, conf))
	kb.str(fn.Name)
	kb.u64(fn.Base)
	kb.i64(int64(fn.NumRegs))

	// Instruction IDs are dense and ordered, so position encodes ID;
	// block structure is covered by each instruction's block index plus
	// the explicit branch/jump edges.
	kb.i64(int64(len(fn.Instrs)))
	for _, in := range fn.Instrs {
		kb.tag('i')
		kb.i64(int64(in.Op))
		kb.i64(int64(in.Dst))
		kb.i64(int64(in.A))
		kb.i64(int64(in.B))
		kb.i64(in.Imm)
		kb.i64(int64(in.Obj))
		kb.i64(int64(in.Size))
		kb.i64(int64(in.Cond))
		kb.str(in.Callee)
		kb.i64(int64(len(in.Args)))
		for _, a := range in.Args {
			kb.i64(int64(a))
		}
		blk := func(b *ir.Block) int64 {
			if b == nil {
				return -1
			}
			return int64(b.Index)
		}
		kb.i64(blk(in.Target))
		kb.i64(blk(in.Else))
		kb.i64(blk(in.Blk))
		kb.u64(in.PC)
	}

	prog := fn.Prog()
	objs := map[ir.ObjID]bool{}
	writeSet := func(set alias.ObjSet, all bool) {
		if all {
			kb.tag(1)
		} else {
			kb.tag(0)
		}
		ids := set.Sorted()
		kb.i64(int64(len(ids)))
		for _, id := range ids {
			kb.i64(int64(id))
			objs[id] = true
		}
	}
	for _, in := range fn.Instrs {
		switch in.Op {
		case ir.OpLoad:
			obj, ok := al.LoadObject(in)
			kb.tag('l')
			kb.i64(int64(in.ID))
			if ok {
				kb.tag(1)
				kb.i64(int64(obj))
				objs[obj] = true
			} else {
				kb.tag(0)
			}
		case ir.OpStore:
			kb.tag('s')
			kb.i64(int64(in.ID))
			writeSet(al.StoreTargets(in))
		case ir.OpCall:
			kb.tag('c')
			kb.i64(int64(in.ID))
			writeSet(al.CallWrites(in))
		}
	}

	ids := make([]ir.ObjID, 0, len(objs))
	for id := range objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id < 0 || int(id) >= len(prog.Objects) {
			continue
		}
		o := prog.Object(id)
		kb.tag('o')
		kb.i64(int64(id))
		kb.i64(int64(o.Kind))
		kb.i64(int64(o.Size()))
		if o.IsScalar() {
			kb.tag(1)
		} else {
			kb.tag(0)
		}
		if o.AddrTaken {
			kb.tag(1)
		} else {
			kb.tag(0)
		}
	}

	return sha256.Sum256(kb.b)
}
