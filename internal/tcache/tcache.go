// Package tcache is the content-addressed per-function table cache of
// the compilation pipeline. Each function is keyed by a hash of its
// lowered IR plus the slice of the pointer-analysis results the
// Figure 5 construction consults for it (KeyFunc); the value is the
// encoded table blob for that function — its bit-level FuncImage plus
// the ID-based FuncTables diagnostics (EncodeBlob/DecodeBlob).
//
// On a hit the pipeline skips both the correlation analysis
// (core.BuildFunc) and the hash search/encoding (tables.EncodeFunc)
// for that function, so recompiling a program with one edited function
// redoes only that function. Keys are conservative: any change to the
// function's own IR, to the alias facts feeding it, or to the analysis
// configuration changes the key and forces a miss — a stale hit is
// impossible as long as SHA-256 doesn't collide.
//
// Storage is a bounded in-memory LRU fronting an optional on-disk
// directory (one file per key, written atomically via rename), so a
// cache survives process restarts when a directory is configured.
// A Cache is safe for concurrent use; a nil *Cache is a valid no-op.
package tcache

import (
	"container/list"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// DefaultMaxEntries bounds the in-memory LRU when the caller passes no
// explicit capacity. Per-function blobs are small (hundreds of bytes to
// a few KiB), so the default keeps even large programs resident.
const DefaultMaxEntries = 4096

// Cache is a bounded-memory, optionally disk-backed blob store. The
// zero value is not usable; create caches with New.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string // "" = memory only
	byKey   map[Key]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats
	hits    *obs.Counter // nil until Instrument
	misses  *obs.Counter
	evicted *obs.Counter
}

type entry struct {
	key  Key
	blob []byte
}

// Stats counts cache traffic. Hits = MemHits + DiskHits.
type Stats struct {
	Hits      uint64
	MemHits   uint64
	DiskHits  uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
}

// New creates a cache holding at most maxEntries blobs in memory
// (<= 0 selects DefaultMaxEntries). A non-empty dir enables the
// on-disk tier: blobs are persisted there and memory misses fall back
// to disk before reporting a miss. The directory is created if needed.
func New(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{
		max:   maxEntries,
		dir:   dir,
		byKey: map[Key]*list.Element{},
		lru:   list.New(),
	}, nil
}

// Instrument mirrors hit/miss/eviction counts into reg as the
// tcache_hits_total, tcache_misses_total and tcache_evictions_total
// counters, alongside whatever the registry already carries.
func (c *Cache) Instrument(reg *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = reg.Counter("tcache_hits_total")
	c.misses = reg.Counter("tcache_misses_total")
	c.evicted = reg.Counter("tcache_evictions_total")
}

// Get returns the blob stored under key. The returned slice is shared —
// callers must treat it as read-only (DecodeBlob only reads). A nil
// cache always misses.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		c.stats.MemHits++
		hits := c.hits
		blob := el.Value.(*entry).blob
		c.mu.Unlock()
		hits.Inc()
		return blob, true
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		if blob, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.insert(key, blob)
			c.stats.Hits++
			c.stats.DiskHits++
			hits := c.hits
			c.mu.Unlock()
			hits.Inc()
			return blob, true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	misses := c.misses
	c.mu.Unlock()
	misses.Inc()
	return nil, false
}

// Put stores blob under key in memory and, when a directory is
// configured, on disk. The cache takes ownership of blob; callers must
// not mutate it afterwards. A nil cache drops the blob.
func (c *Cache) Put(key Key, blob []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.insert(key, blob)
	c.stats.Puts++
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		// Atomic publish: write to a private temp file, then rename.
		// Failures are silent — the disk tier is an optimisation, and a
		// missing file is just a future miss.
		tmp, err := os.CreateTemp(dir, "tcb-*")
		if err != nil {
			return
		}
		name := tmp.Name()
		_, werr := tmp.Write(blob)
		cerr := tmp.Close()
		if werr == nil && cerr == nil {
			if os.Rename(name, c.path(key)) == nil {
				return
			}
		}
		os.Remove(name)
	}
}

// insert adds or refreshes a memory entry, evicting from the LRU tail.
// Caller holds c.mu.
func (c *Cache) insert(key Key, blob []byte) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).blob = blob
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, blob: blob})
	for c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evictions++
		c.evicted.Inc()
	}
}

// Len reports the number of blobs resident in memory.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path maps a key to its blob file.
func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, hex.EncodeToString(key[:])+".tcb")
}
