// Package cpu implements the cycle-level processor timing model used
// for the paper's performance evaluation (Table 1, Figure 9, and the
// detection-latency measurement), standing in for SimpleScalar's
// sim-outorder. It is trace-driven: the VM executes architecturally and
// the model assigns fetch/dispatch/issue/complete/commit cycles to each
// dynamic instruction under the configured resource limits, with the
// IPDS unit modelled as a serial request queue fed at branch commit.
package cpu

// Config mirrors the paper's Table 1 ("Default Parameters of the
// Processor Simulated") plus the latencies the model needs.
type Config struct {
	// Core widths and windows.
	FetchQueue  int // entries
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int

	// Branch prediction: 2-level (gshare-style) predictor.
	PredictorHistBits  int
	PredictorTableBits int
	MispredictPenalty  uint64 // front-end refill after resolve

	// Caches.
	L1Sets, L1Ways, L1Line int
	L1Latency              uint64
	L2Sets, L2Ways, L2Line int
	L2Latency              uint64

	// Memory: first chunk + per-chunk latency over a BusWidth-byte bus.
	MemFirstChunk uint64
	MemInterChunk uint64
	BusWidth      int

	// TLB.
	TLBEntries  int
	PageSize    uint64
	TLBMissCost uint64

	// Functional-unit latencies.
	LatALU, LatMul, LatDiv uint64

	// IPDS unit.
	IPDSQueue         int    // request queue entries
	IPDSAccessCycles  uint64 // per table access
	IPDSSpillCycles   uint64 // per 64 bits of spill/fill traffic
	IPDSDeliverCycles uint64 // commit→IPDS delivery pipeline depth
	// IPDSEntriesPerAccess is how many BAT list entries one table
	// access returns: entries are 13–20 bits, so a 64-bit SRAM read
	// covers several of them.
	IPDSEntriesPerAccess int
}

// DefaultConfig returns Table 1: 8-wide core, 128-entry RUU, 64-entry
// LSQ, 64K 2-way L1s (2 cycles), 512K 4-way L2 (10 cycles), 80+5-cycle
// memory over an 8-byte bus, 30-cycle TLB misses, 2-level predictor.
func DefaultConfig() Config {
	return Config{
		FetchQueue:  32,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     128,
		LSQSize:     64,

		PredictorHistBits:  12,
		PredictorTableBits: 12,
		MispredictPenalty:  3,

		L1Sets: 64 * 1024 / (32 * 2), L1Ways: 2, L1Line: 32,
		L1Latency: 2,
		L2Sets:    512 * 1024 / (32 * 4), L2Ways: 4, L2Line: 32,
		L2Latency: 10,

		MemFirstChunk: 80,
		MemInterChunk: 5,
		BusWidth:      8,

		TLBEntries:  64,
		PageSize:    4096,
		TLBMissCost: 30,

		LatALU: 1,
		LatMul: 3,
		LatDiv: 20,

		IPDSQueue:            16,
		IPDSAccessCycles:     1,
		IPDSSpillCycles:      1,
		IPDSDeliverCycles:    9,
		IPDSEntriesPerAccess: 4,
	}
}

// MemLatency returns the full-line memory access latency.
func (c Config) MemLatency(line int) uint64 {
	chunks := uint64((line + c.BusWidth - 1) / c.BusWidth)
	if chunks == 0 {
		chunks = 1
	}
	return c.MemFirstChunk + (chunks-1)*c.MemInterChunk
}
