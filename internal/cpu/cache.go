package cpu

// cache is a set-associative LRU cache model. Only hit/miss timing
// matters, so lines carry tags and LRU stamps but no data.
type cache struct {
	sets  int
	ways  int
	line  uint64
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	tick  uint64

	Hits, Misses uint64
}

func newCache(sets, ways, line int) *cache {
	c := &cache{sets: sets, ways: ways, line: uint64(line)}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Access touches addr and reports whether it hit.
func (c *cache) Access(addr uint64) bool {
	c.tick++
	block := addr / c.line
	set := int(block % uint64(c.sets))
	tag := block / uint64(c.sets)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.tick
			c.Hits++
			return true
		}
	}
	c.Misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.tick
	return false
}

// tlb is a fully-associative LRU TLB model.
type tlb struct {
	entries  int
	pageSize uint64
	pages    []uint64
	valid    []bool
	lru      []uint64
	tick     uint64

	Hits, Misses uint64
}

func newTLB(entries int, pageSize uint64) *tlb {
	return &tlb{
		entries:  entries,
		pageSize: pageSize,
		pages:    make([]uint64, entries),
		valid:    make([]bool, entries),
		lru:      make([]uint64, entries),
	}
}

// Access touches the page containing addr and reports whether it hit.
func (t *tlb) Access(addr uint64) bool {
	t.tick++
	page := addr / t.pageSize
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.lru[i] = t.tick
			t.Hits++
			return true
		}
	}
	t.Misses++
	victim := 0
	for i := 1; i < t.entries; i++ {
		if !t.valid[i] {
			victim = i
			break
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.lru[victim] = t.tick
	return false
}

// predictor is a two-level adaptive predictor (gshare): a global
// history register XORed with the PC indexes a table of 2-bit
// saturating counters (Table 1's "2 Level" entry).
type predictor struct {
	histBits  int
	tableBits int
	history   uint64
	counters  []uint8

	Lookups, Mispredicts uint64
}

func newPredictor(histBits, tableBits int) *predictor {
	return &predictor{
		histBits:  histBits,
		tableBits: tableBits,
		counters:  make([]uint8, 1<<tableBits),
	}
}

// Predict consumes one branch outcome and reports whether the
// prediction was correct.
func (p *predictor) Predict(pc uint64, taken bool) bool {
	p.Lookups++
	idx := ((pc >> 2) ^ p.history) & uint64(len(p.counters)-1)
	pred := p.counters[idx] >= 2
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else if p.counters[idx] > 0 {
		p.counters[idx]--
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << p.histBits) - 1)
	if pred != taken {
		p.Mispredicts++
		return false
	}
	return true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
