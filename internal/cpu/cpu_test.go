package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/tables"
	"repro/internal/vm"
)

func compile(t *testing.T, src string) (*ir.Program, *tables.Image) {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := ir.Lower(mp, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	img, err := tables.Encode(core.Build(p, nil))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return p, img
}

const workSrc = `
int mode;
int sum(int n) {
	int s; int i;
	s = 0;
	for (i = 0; i < n; i++) {
		if (mode == 1) { s = s + i; } else { s = s + 2*i; }
	}
	return s;
}
int main() {
	mode = 1;
	return sum(200) % 251;
}`

// timeRun executes src under the model, optionally with IPDS.
func timeRun(t *testing.T, src string, cfg Config, withIPDS bool) (vm.Result, Stats) {
	t.Helper()
	p, img := compile(t, src)
	v := vm.New(p, vm.DefaultConfig, nil)
	var m *ipds.Machine
	if withIPDS {
		m = ipds.New(img, ipds.DefaultConfig)
	}
	s := New(cfg, m)
	s.Attach(v)
	res := v.Run()
	if res.Status != vm.Exited {
		t.Fatalf("run failed: %v %v", res.Status, res.Fault)
	}
	return res, s.Stats()
}

func TestCyclesSane(t *testing.T) {
	res, st := timeRun(t, workSrc, DefaultConfig(), false)
	if st.Instructions != res.Steps {
		t.Errorf("instructions = %d, steps = %d", st.Instructions, res.Steps)
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles accumulated")
	}
	ipc := st.IPC()
	if ipc <= 0.1 || ipc > float64(DefaultConfig().IssueWidth) {
		t.Errorf("IPC = %.2f out of plausible range", ipc)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	_, st := timeRun(t, workSrc, DefaultConfig(), false)
	if st.Branches == 0 {
		t.Fatal("no branches")
	}
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.2 {
		t.Errorf("mispredict rate %.2f too high for a regular loop", rate)
	}
}

func TestCachesWarmUp(t *testing.T) {
	_, st := timeRun(t, workSrc, DefaultConfig(), false)
	if st.L1IHits == 0 || st.L1DHits == 0 {
		t.Error("caches never hit")
	}
	hitRate := float64(st.L1DHits) / float64(st.L1DHits+st.L1DMisses)
	if hitRate < 0.9 {
		t.Errorf("L1D hit rate %.2f too low for a tiny working set", hitRate)
	}
}

func TestIPDSOverheadSmall(t *testing.T) {
	_, base := timeRun(t, workSrc, DefaultConfig(), false)
	_, guarded := timeRun(t, workSrc, DefaultConfig(), true)
	if guarded.IPDSRequests == 0 {
		t.Fatal("IPDS never received requests")
	}
	overhead := float64(guarded.Cycles)/float64(base.Cycles) - 1
	if overhead < 0 {
		t.Errorf("guarded run faster than baseline? %.4f", overhead)
	}
	// The paper reports 0.79% average degradation; the model should be
	// in the same small-percentage regime.
	if overhead > 0.05 {
		t.Errorf("overhead %.2f%% too large", overhead*100)
	}
}

func TestIPDSQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPDSQueue = 1
	cfg.IPDSAccessCycles = 50 // absurdly slow checker
	_, st := timeRun(t, workSrc, cfg, true)
	if st.IPDSStallCycles == 0 {
		t.Error("slow IPDS with a 1-entry queue must stall commit")
	}
}

func TestDetectionLatencyMeasured(t *testing.T) {
	_, st := timeRun(t, workSrc, DefaultConfig(), true)
	if st.DetectionSamples == 0 {
		t.Fatal("no latency samples")
	}
	avg := st.AvgDetectionLatency()
	if avg < float64(DefaultConfig().IPDSDeliverCycles) {
		t.Errorf("latency %.1f below delivery floor", avg)
	}
	if avg > 100 {
		t.Errorf("latency %.1f implausibly high", avg)
	}
}

func TestMemLatencyFormula(t *testing.T) {
	cfg := DefaultConfig()
	// 32-byte line over an 8-byte bus: 80 + 3*5.
	if got := cfg.MemLatency(32); got != 95 {
		t.Errorf("MemLatency(32) = %d, want 95", got)
	}
	if got := cfg.MemLatency(8); got != 80 {
		t.Errorf("MemLatency(8) = %d, want 80", got)
	}
	if got := cfg.MemLatency(0); got != 80 {
		t.Errorf("MemLatency(0) = %d, want 80", got)
	}
}

func TestCacheModel(t *testing.T) {
	c := newCache(2, 2, 32)
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(0) || !c.Access(31) {
		t.Error("same line must hit")
	}
	if c.Access(64) {
		t.Error("different line cold miss")
	}
	// Fill set 0 (lines 0 and 128 map to set 0 with 2 sets), then evict.
	c.Access(128)
	c.Access(256) // third distinct line in set 0: evicts LRU (line 0... or 128)
	if c.Access(0) && c.Access(128) && c.Access(256) {
		t.Error("2-way set cannot hold three lines")
	}
}

func TestTLBModel(t *testing.T) {
	tl := newTLB(2, 4096)
	if tl.Access(0) {
		t.Error("cold miss")
	}
	if !tl.Access(100) {
		t.Error("same page hits")
	}
	tl.Access(4096)
	tl.Access(8192) // evicts page 0 (LRU)
	if tl.Access(0) {
		t.Error("evicted page must miss")
	}
}

func TestPredictorConvergesOnBias(t *testing.T) {
	p := newPredictor(8, 10)
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x4000, true) {
			wrong++
		}
	}
	// Warmup: each new history value indexes a cold counter until the
	// register saturates at all-ones (~2 misses per history step).
	if wrong > 20 {
		t.Errorf("always-taken branch mispredicted %d times", wrong)
	}
}

func TestPredictorPattern(t *testing.T) {
	// Alternating T/NT is learnable by a 2-level predictor.
	p := newPredictor(8, 12)
	wrong := 0
	for i := 0; i < 2000; i++ {
		if !p.Predict(0x4000, i%2 == 0) && i > 200 {
			wrong++
		}
	}
	if wrong > 20 {
		t.Errorf("alternating pattern mispredicted %d times after warmup", wrong)
	}
}

func TestSpillTrafficChargesIPDS(t *testing.T) {
	p, img := compile(t, `
		int g;
		int deep(int n) {
			if (g == 1) { print_int(n); }
			if (n <= 0) { return 0; }
			return deep(n-1);
		}
		int main() { g = 2; return deep(60); }`)
	v := vm.New(p, vm.DefaultConfig, nil)
	m := ipds.New(img, ipds.Config{BSVStackBits: 64, BCVStackBits: 32, BATStackBits: 256})
	s := New(DefaultConfig(), m)
	s.Attach(v)
	res := v.Run()
	if res.Status != vm.Exited {
		t.Fatalf("run: %v", res.Fault)
	}
	if m.Stats().SpillEvents == 0 {
		t.Fatal("expected spills with tiny buffers")
	}
	if s.Stats().IPDSBusyCycles == 0 {
		t.Error("IPDS busy time missing")
	}
}

func TestDeterminism(t *testing.T) {
	_, a := timeRun(t, workSrc, DefaultConfig(), true)
	_, b := timeRun(t, workSrc, DefaultConfig(), true)
	if a != b {
		t.Errorf("non-deterministic timing: %+v vs %+v", a, b)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC of empty stats must be 0")
	}
	if s.AvgDetectionLatency() != 0 {
		t.Error("latency of empty stats must be 0")
	}
}

func TestTakenBranchBreaksFetchGroup(t *testing.T) {
	// A tight taken-branch loop must run at well under the machine
	// width: every taken branch ends the fetch group.
	_, st := timeRun(t, `
		int main() {
			int i; int s;
			s = 0;
			for (i = 0; i < 500; i++) { s = s + i; }
			return s % 7;
		}`, DefaultConfig(), false)
	if st.IPC() > 6 {
		t.Errorf("IPC %.2f implausibly high for a branchy loop", st.IPC())
	}
}
