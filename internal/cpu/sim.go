package cpu

import (
	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Stats aggregates the timing run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Branches     uint64
	Mispredicts  uint64

	L1IHits, L1IMisses uint64
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	TLBMisses          uint64

	// IPDS unit activity.
	IPDSRequests     uint64
	IPDSStallCycles  uint64 // commit stalls due to a full request queue
	IPDSBusyCycles   uint64 // cycles the IPDS unit spent processing
	DetectionSamples uint64
	DetectionTotal   uint64 // sum of per-branch check latencies
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// AvgDetectionLatency returns the mean branch→check-complete latency in
// cycles (the paper's 11.7-cycle measurement).
func (s Stats) AvgDetectionLatency() float64 {
	if s.DetectionSamples == 0 {
		return 0
	}
	return float64(s.DetectionTotal) / float64(s.DetectionSamples)
}

// Sim is the trace-driven processor model. Attach it to a VM; after the
// run, Stats() reports the cycle count.
type Sim struct {
	cfg Config

	l1i, l1d, l2 *cache
	dtlb         *tlb
	pred         *predictor

	// Per-register readiness, one frame per call level.
	regReady [][]uint64

	// Resource rings: the cycle at which the slot's previous holder
	// freed it.
	ruuRing   []uint64 // commit cycles of in-flight window
	lsqRing   []uint64
	fetchRing []uint64 // dispatch cycles (fetch queue backpressure)
	fetchBW   []uint64 // fetch bandwidth window
	decodeBW  []uint64
	issueBW   []uint64
	commitBW  []uint64
	ipdsRing  []uint64 // completion cycles of queued IPDS requests
	ruuIdx    uint64
	lsqIdx    uint64
	fetchIdx  uint64
	fbwIdx    uint64
	dbwIdx    uint64
	ibwIdx    uint64
	cbwIdx    uint64
	ipdsIdx   uint64

	fetchBlockedUntil uint64
	lastCommit        uint64
	ipdsFreeAt        uint64

	machine       *ipds.Machine
	lastIPDSStats ipds.Stats

	met   *simMetrics
	stats Stats
}

// simMetrics mirrors the headline timing counters into a metrics
// registry so a live /metrics scrape can watch a simulation progress.
// Gauges are refreshed at branch commit (the cadence the IPDS unit
// already works at), not per retired instruction.
type simMetrics struct {
	cycles       *obs.Gauge
	instructions *obs.Gauge
	ipdsStalls   *obs.Gauge
	ipdsBusy     *obs.Gauge
	requests     *obs.Counter
}

// Instrument attaches the simulator to a metrics registry (nil
// detaches). labels are name/value pairs appended to every metric name.
func (s *Sim) Instrument(r *obs.Registry, labels ...string) {
	if r == nil {
		s.met = nil
		return
	}
	n := func(base string) string { return obs.Name(base, labels...) }
	s.met = &simMetrics{
		cycles:       r.Gauge(n("cpu_cycles")),
		instructions: r.Gauge(n("cpu_instructions")),
		ipdsStalls:   r.Gauge(n("cpu_ipds_stall_cycles")),
		ipdsBusy:     r.Gauge(n("cpu_ipds_busy_cycles")),
		requests:     r.Counter(n("cpu_ipds_requests_total")),
	}
}

func (s *Sim) syncMetrics() {
	mm := s.met
	if mm == nil {
		return
	}
	mm.cycles.Set(int64(s.stats.Cycles))
	mm.instructions.Set(int64(s.stats.Instructions))
	mm.ipdsStalls.Set(int64(s.stats.IPDSStallCycles))
	mm.ipdsBusy.Set(int64(s.stats.IPDSBusyCycles))
}

// New creates a simulator. machine may be nil to model the baseline
// processor without infeasible-path detection.
func New(cfg Config, machine *ipds.Machine) *Sim {
	s := &Sim{
		cfg:       cfg,
		l1i:       newCache(cfg.L1Sets, cfg.L1Ways, cfg.L1Line),
		l1d:       newCache(cfg.L1Sets, cfg.L1Ways, cfg.L1Line),
		l2:        newCache(cfg.L2Sets, cfg.L2Ways, cfg.L2Line),
		dtlb:      newTLB(cfg.TLBEntries, cfg.PageSize),
		pred:      newPredictor(cfg.PredictorHistBits, cfg.PredictorTableBits),
		machine:   machine,
		ruuRing:   make([]uint64, cfg.RUUSize),
		lsqRing:   make([]uint64, cfg.LSQSize),
		fetchRing: make([]uint64, cfg.FetchQueue),
		fetchBW:   make([]uint64, cfg.DecodeWidth),
		decodeBW:  make([]uint64, cfg.DecodeWidth),
		issueBW:   make([]uint64, cfg.IssueWidth),
		commitBW:  make([]uint64, cfg.CommitWidth),
		ipdsRing:  make([]uint64, cfg.IPDSQueue),
	}
	s.regReady = append(s.regReady, nil)
	return s
}

// Attach wires the simulator (and its IPDS machine, if any) to a VM.
// When a machine is attached here, do not also call ipds.Attach: the
// simulator drives the machine so it can charge cycles for each event.
func (s *Sim) Attach(v *vm.VM) {
	v.AddHooks(vm.Hooks{
		OnCall: func(fn *ir.Func) {
			s.pushFrame(fn)
			if s.machine != nil {
				s.machine.EnterFunc(fn.Base)
				s.chargeSpills()
			}
		},
		OnRet: func(fn *ir.Func) {
			s.popFrame()
			if s.machine != nil {
				s.machine.LeaveFunc()
				s.chargeSpills()
			}
		},
		OnInstr: func(in *ir.Instr, addr uint64, size int) {
			if in.Op == ir.OpBr {
				return // handled by OnBranch with the outcome
			}
			s.retire(in, addr, false)
		},
		OnBranch: func(br *ir.Instr, taken bool) {
			s.retire(br, 0, taken)
		},
	})
}

func (s *Sim) pushFrame(fn *ir.Func) {
	s.regReady = append(s.regReady, make([]uint64, fn.NumRegs))
}

func (s *Sim) popFrame() {
	if len(s.regReady) > 1 {
		s.regReady = s.regReady[:len(s.regReady)-1]
	}
}

// chargeSpills converts table spill/fill traffic into IPDS busy time.
func (s *Sim) chargeSpills() {
	st := s.machine.Stats()
	moved := (st.SpillBits - s.lastIPDSStats.SpillBits) +
		(st.FillBits - s.lastIPDSStats.FillBits)
	if moved > 0 {
		s.ipdsFreeAt += (moved / 64) * s.cfg.IPDSSpillCycles
	}
	s.lastIPDSStats = st
}

// bwSlot enforces a width-per-cycle bandwidth window: the returned
// cycle is at least one past the cycle the slot's previous occupant
// used.
func bwSlot(ring []uint64, idx *uint64, want uint64) uint64 {
	i := *idx % uint64(len(ring))
	if ring[i] >= want {
		want = ring[i] + 1
	}
	ring[i] = want
	*idx++
	return want
}

func (s *Sim) topRegs() []uint64 {
	return s.regReady[len(s.regReady)-1]
}

func (s *Sim) regReadyAt(r ir.Reg) uint64 {
	regs := s.topRegs()
	if r == ir.NoReg || int(r) >= len(regs) {
		return 0
	}
	return regs[r]
}

func (s *Sim) setReady(r ir.Reg, cyc uint64) {
	regs := s.topRegs()
	if r != ir.NoReg && int(r) < len(regs) {
		regs[r] = cyc
	}
}

// dAccess models a data access through L1D/L2/memory plus the D-TLB.
func (s *Sim) dAccess(addr uint64) uint64 {
	lat := s.cfg.L1Latency
	if !s.dtlb.Access(addr) {
		lat += s.cfg.TLBMissCost
	}
	if !s.l1d.Access(addr) {
		lat += s.cfg.L2Latency
		if !s.l2.Access(addr) {
			lat += s.cfg.MemLatency(s.cfg.L1Line)
		}
	}
	return lat
}

// iAccess models an instruction fetch through L1I/L2/memory.
func (s *Sim) iAccess(pc uint64) uint64 {
	lat := uint64(0) // L1I hit is pipelined into fetch
	if !s.l1i.Access(pc) {
		lat += s.cfg.L2Latency
		if !s.l2.Access(pc) {
			lat += s.cfg.MemLatency(s.cfg.L1Line)
		}
	}
	return lat
}

// retire runs one dynamic instruction through the model in program
// order, assigning its pipeline cycles.
func (s *Sim) retire(in *ir.Instr, addr uint64, taken bool) {
	s.stats.Instructions++

	// Fetch: blocked by mispredict redirects, fetch-queue backpressure
	// and fetch bandwidth; an I-cache miss delays delivery.
	fetch := s.fetchBlockedUntil
	fq := s.fetchRing[s.fetchIdx%uint64(len(s.fetchRing))]
	if fq > fetch {
		fetch = fq
	}
	fetch = bwSlot(s.fetchBW, &s.fbwIdx, fetch)
	fetch += s.iAccess(in.PC)

	// Decode/dispatch: decode width and RUU occupancy.
	dispatch := fetch + 1
	ruuFree := s.ruuRing[s.ruuIdx%uint64(len(s.ruuRing))]
	if ruuFree > dispatch {
		dispatch = ruuFree
	}
	dispatch = bwSlot(s.decodeBW, &s.dbwIdx, dispatch)
	s.fetchRing[s.fetchIdx%uint64(len(s.fetchRing))] = dispatch
	s.fetchIdx++

	// Issue: operands ready, issue bandwidth, LSQ space for mem ops.
	issue := dispatch + 1
	if r := s.regReadyAt(in.A); r > issue {
		issue = r
	}
	if r := s.regReadyAt(in.B); r > issue {
		issue = r
	}
	for _, a := range in.Args {
		if r := s.regReadyAt(a); r > issue {
			issue = r
		}
	}
	isMem := in.Op == ir.OpLoad || in.Op == ir.OpStore
	if isMem {
		lsqFree := s.lsqRing[s.lsqIdx%uint64(len(s.lsqRing))]
		if lsqFree > issue {
			issue = lsqFree
		}
	}
	issue = bwSlot(s.issueBW, &s.ibwIdx, issue)

	// Execute.
	var lat uint64
	switch in.Op {
	case ir.OpMul:
		lat = s.cfg.LatMul
	case ir.OpDiv, ir.OpRem:
		lat = s.cfg.LatDiv
	case ir.OpLoad:
		lat = s.dAccess(addr)
	case ir.OpStore:
		lat = s.cfg.L1Latency
		s.dAccess(addr) // update cache/TLB state; stores retire via LSQ
	default:
		lat = s.cfg.LatALU
	}
	complete := issue + lat

	// Branch resolution. Any taken control transfer ends the fetch
	// group: the next instruction cannot fetch in the same cycle.
	switch in.Op {
	case ir.OpBr:
		s.stats.Branches++
		if !s.pred.Predict(in.PC, taken) {
			s.stats.Mispredicts++
			redirect := complete + s.cfg.MispredictPenalty
			if redirect > s.fetchBlockedUntil {
				s.fetchBlockedUntil = redirect
			}
		} else if taken && fetch+1 > s.fetchBlockedUntil {
			s.fetchBlockedUntil = fetch + 1
		}
	case ir.OpJmp, ir.OpCall, ir.OpRet:
		if fetch+1 > s.fetchBlockedUntil {
			s.fetchBlockedUntil = fetch + 1
		}
	}

	// Commit: in order, commit width.
	commit := complete + 1
	if commit < s.lastCommit {
		commit = s.lastCommit
	}
	commit = bwSlot(s.commitBW, &s.cbwIdx, commit)

	// IPDS request at branch commit.
	if in.Op == ir.OpBr {
		if s.machine != nil {
			commit = s.ipdsRequest(in.PC, taken, commit)
		}
		if s.met != nil {
			if commit > s.stats.Cycles {
				s.stats.Cycles = commit
			}
			s.syncMetrics()
		}
	}

	s.lastCommit = commit
	if commit > s.stats.Cycles {
		s.stats.Cycles = commit
	}

	s.ruuRing[s.ruuIdx%uint64(len(s.ruuRing))] = commit
	s.ruuIdx++
	if isMem {
		s.lsqRing[s.lsqIdx%uint64(len(s.lsqRing))] = commit
		s.lsqIdx++
	}
	if in.Dst != ir.NoReg {
		s.setReady(in.Dst, complete)
	}
}

// ipdsRequest enqueues the verify+update work for a committed branch.
// The program only stalls when the bounded request queue is full
// (§5.4: "we can allow the program execution to continue ... but queue
// all the requests in their original order").
func (s *Sim) ipdsRequest(pc uint64, taken bool, commit uint64) uint64 {
	_, cost := s.machine.OnBranch(pc, taken)
	s.stats.IPDSRequests++
	if s.met != nil {
		s.met.requests.Inc()
	}

	// cost is 1 (BSV/BCV probe) + walked BAT entries; one SRAM access
	// returns IPDSEntriesPerAccess consecutive entries.
	per := s.cfg.IPDSEntriesPerAccess
	if per < 1 {
		per = 1
	}
	walked := cost - 1
	cost = 1 + (walked+per-1)/per

	// Queue-full backpressure: the oldest of the last IPDSQueue
	// requests must have drained before this one can enqueue.
	oldest := s.ipdsRing[s.ipdsIdx%uint64(len(s.ipdsRing))]
	if oldest > commit {
		s.stats.IPDSStallCycles += oldest - commit
		commit = oldest
	}

	start := s.ipdsFreeAt
	if commit > start {
		start = commit
	}
	busy := uint64(cost) * s.cfg.IPDSAccessCycles
	finish := start + busy
	s.ipdsFreeAt = finish
	s.stats.IPDSBusyCycles += busy

	s.ipdsRing[s.ipdsIdx%uint64(len(s.ipdsRing))] = finish
	s.ipdsIdx++

	// Detection latency: from the branch being sent at commit to the
	// check completing, including the fixed delivery pipeline.
	s.stats.DetectionSamples++
	s.stats.DetectionTotal += (finish - commit) + s.cfg.IPDSDeliverCycles
	return commit
}

// Stats returns the accumulated counters with cache/TLB details filled
// in.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.L1IHits, st.L1IMisses = s.l1i.Hits, s.l1i.Misses
	st.L1DHits, st.L1DMisses = s.l1d.Hits, s.l1d.Misses
	st.L2Hits, st.L2Misses = s.l2.Hits, s.l2.Misses
	st.TLBMisses = s.dtlb.Misses
	return st
}
