package ir

// Function inlining. The paper's correlation analysis is strictly
// function-local ("the algorithm works on functions rather than on the
// whole program") and treats every call conservatively; the authors
// note they avoid "a full-fledged inter-procedural analysis". Inlining
// small leaf callees is the classic way to recover the lost precision
// without any inter-procedural machinery: the callee's loads, stores
// and branches become part of the caller's CFG, so correlations flow
// straight through former call boundaries. This pass is the repo's
// "future work" extension; the extension experiment measures its effect
// on the detection rate.

// InlineOptions bounds the inliner.
type InlineOptions struct {
	// MaxInstrs is the largest callee size (in IR instructions)
	// considered for inlining.
	MaxInstrs int
	// MaxGrowth caps the caller's size after inlining, as a multiple
	// of its original instruction count.
	MaxGrowth int
}

// DefaultInlineOptions inlines leaf functions of up to 40 instructions
// with at most 4x caller growth.
var DefaultInlineOptions = InlineOptions{MaxInstrs: 40, MaxGrowth: 4}

// Inline expands calls to small leaf user functions (no calls to other
// user functions) into their callers, then re-lays-out the program.
// It returns the number of call sites expanded.
func Inline(prog *Program, opts InlineOptions) int {
	if opts.MaxInstrs <= 0 {
		opts = DefaultInlineOptions
	}
	inlinable := map[string]*Func{}
	for _, fn := range prog.Funcs {
		if fn.Name == "main" {
			continue
		}
		if len(fn.Instrs) > opts.MaxInstrs {
			continue
		}
		leaf := true
		for _, in := range fn.Instrs {
			if in.Op == OpCall && prog.ByName[in.Callee] != nil {
				leaf = false
				break
			}
		}
		if leaf {
			inlinable[fn.Name] = fn
		}
	}
	if len(inlinable) == 0 {
		return 0
	}

	expanded := 0
	for _, caller := range prog.Funcs {
		if inlinable[caller.Name] != nil {
			// Leaves keep their bodies; inlining into other leaves
			// would invalidate size bounds mid-pass.
			continue
		}
		budget := opts.MaxGrowth * len(caller.Instrs)
		for {
			site := findInlineSite(caller, inlinable)
			if site == nil || len(caller.Instrs) >= budget {
				break
			}
			expandCall(prog, caller, site, inlinable[site.Callee])
			expanded++
		}
	}
	if expanded > 0 {
		AssignBases(prog)
	}
	return expanded
}

func findInlineSite(caller *Func, inlinable map[string]*Func) *Instr {
	for _, in := range caller.Instrs {
		if in.Op == OpCall && inlinable[in.Callee] != nil {
			return in
		}
	}
	return nil
}

// expandCall splices a clone of callee into caller at the call site.
func expandCall(prog *Program, caller *Func, call *Instr, callee *Func) {
	regOff := Reg(caller.NumRegs)
	caller.NumRegs += callee.NumRegs

	// Clone the callee's frame objects as fresh caller locals so every
	// inlined copy has its own storage in the caller's frame.
	objMap := map[ObjID]ObjID{}
	cloneObj := func(id ObjID) {
		src := prog.Object(id)
		clone := &Object{
			ID:        ObjID(len(prog.Objects)),
			Name:      caller.Name + ".inl." + src.Name,
			Kind:      ObjLocal,
			Type:      src.Type,
			Fn:        caller,
			AddrTaken: src.AddrTaken,
		}
		prog.Objects = append(prog.Objects, clone)
		caller.Locals = append(caller.Locals, clone.ID)
		objMap[id] = clone.ID
	}
	for _, id := range callee.Params {
		cloneObj(id)
	}
	for _, id := range callee.Locals {
		cloneObj(id)
	}

	// Split the call's block: everything after the call moves to a
	// continuation block; the call itself disappears.
	blk := call.Blk
	callIdx := -1
	for i, in := range blk.Instrs {
		if in == call {
			callIdx = i
			break
		}
	}
	cont := &Block{Index: len(caller.Blocks), Fn: caller}
	caller.Blocks = append(caller.Blocks, cont)
	cont.Instrs = append(cont.Instrs, blk.Instrs[callIdx+1:]...)
	blk.Instrs = blk.Instrs[:callIdx]

	// Clone the callee's blocks.
	blockMap := map[*Block]*Block{}
	for _, b := range callee.Blocks {
		nb := &Block{Index: len(caller.Blocks), Fn: caller}
		caller.Blocks = append(caller.Blocks, nb)
		blockMap[b] = nb
	}
	mapReg := func(r Reg) Reg {
		if r == NoReg {
			return r
		}
		return r + regOff
	}
	for _, b := range callee.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			c := *in // copy
			c.Dst = mapReg(in.Dst)
			c.A = mapReg(in.A)
			c.B = mapReg(in.B)
			if len(in.Args) > 0 {
				c.Args = make([]Reg, len(in.Args))
				for i, a := range in.Args {
					c.Args[i] = mapReg(a)
				}
			}
			if in.Obj != ObjNone {
				if mapped, ok := objMap[in.Obj]; ok {
					c.Obj = mapped
				}
			}
			if in.Target != nil {
				c.Target = blockMap[in.Target]
			}
			if in.Else != nil {
				c.Else = blockMap[in.Else]
			}
			switch in.Op {
			case OpParam:
				// param #i becomes a move from the call argument.
				c.Op = OpMov
				c.A = call.Args[in.Imm]
				c.Imm = 0
			case OpRet:
				// return becomes (optional) result move + jump to the
				// continuation.
				if call.Dst != NoReg && in.A != NoReg {
					nb.Instrs = append(nb.Instrs, &Instr{
						Op: OpMov, Dst: call.Dst, A: mapReg(in.A),
						B: NoReg, Obj: ObjNone, Pos: in.Pos,
					})
				}
				c = Instr{Op: OpJmp, Dst: NoReg, A: NoReg, B: NoReg,
					Obj: ObjNone, Target: cont, Pos: in.Pos}
			}
			ci := c
			nb.Instrs = append(nb.Instrs, &ci)
		}
	}

	// Wire the split block into the inlined entry.
	blk.Instrs = append(blk.Instrs, &Instr{
		Op: OpJmp, Dst: NoReg, A: NoReg, B: NoReg, Obj: ObjNone,
		Target: blockMap[callee.Entry], Pos: call.Pos,
	})
	caller.renumber()
}

// AssignBases re-lays-out code addresses for every function and
// renumbers. Lowering calls it once; passes that change instruction
// counts (the inliner) call it again.
func AssignBases(prog *Program) {
	base := uint64(0x1000)
	for _, fn := range prog.Funcs {
		fn.Base = base
		fn.renumber()
		n := uint64(4 * len(fn.Instrs))
		base += (n + 0xFF) &^ 0xFF
	}
}
