// Package ir defines the three-address intermediate representation that
// the branch-correlation analysis operates on, together with the
// lowering from checked MiniC ASTs.
//
// Design notes relevant to the analyses:
//
//   - Virtual registers are single-assignment by construction: lowering
//     allocates a fresh register for every produced value. The def
//     chain of any register is therefore unique and acyclic, which the
//     affine-range analysis in internal/ranges relies on.
//   - Every read of a memory-resident variable is an explicit OpLoad
//     and every write an explicit OpStore, mirroring the unoptimized
//     MachSUIF code the paper analyses. The optional store-to-load
//     forwarding pass (see passes.go) reintroduces the "value still in
//     a register" patterns that make store→load correlations visible.
//   - Conditional branches keep their comparison structure (OpBr with a
//     condition code and two register operands) rather than lowering to
//     a flag register, so a branch direction maps directly to a value
//     range.
package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Reg is a virtual register. NoReg marks an absent operand.
type Reg int

// NoReg is the absent-register sentinel.
const NoReg Reg = -1

// ObjID identifies a memory object (a variable, array or string
// constant). Object IDs are unique across the whole program.
type ObjID int

// ObjNone marks instructions with no direct memory operand.
const ObjNone ObjID = -1

// ObjKind discriminates memory object kinds.
type ObjKind int

// Object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjLocal
	ObjParam
	ObjString
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjLocal:
		return "local"
	case ObjParam:
		return "param"
	case ObjString:
		return "string"
	}
	return "?"
}

// Object is a memory-resident program entity. The alias analysis and
// the correlation analysis treat objects as the unit of aliasing.
type Object struct {
	ID   ObjID
	Name string
	Kind ObjKind
	Type *minic.Type
	Fn   *Func // owning function for locals/params, nil for globals/strings

	// AddrTaken mirrors the frontend flag: the object's address
	// escapes, so indirect accesses may reach it.
	AddrTaken bool

	// ParamIndex is the 0-based parameter position for ObjParam.
	ParamIndex int

	// Init is the initial scalar value for globals.
	Init int64

	// Data holds the bytes of ObjString objects (NUL-terminated).
	Data []byte
}

// Size returns the object's size in bytes.
func (o *Object) Size() int {
	if o.Kind == ObjString {
		return len(o.Data)
	}
	return o.Type.Size()
}

// IsScalar reports whether the object is a scalar variable (the only
// kind the correlation analysis tracks ranges for).
func (o *Object) IsScalar() bool {
	return o.Kind != ObjString && o.Type.IsScalar()
}

func (o *Object) String() string { return o.Name }

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpConst Op = iota // Dst = Imm
	OpMov             // Dst = A
	OpParam           // Dst = incoming argument #Imm (entry block only)

	// Binary arithmetic/bitwise: Dst = A op B.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Unary: Dst = op A.
	OpNeg
	OpBNot

	// Comparison producing 0/1: Dst = A cond B.
	OpSet

	OpAddr  // Dst = &Obj + Imm
	OpLoad  // Dst = mem[Obj] (direct) or mem[A] (indirect), Size bytes
	OpStore // mem[Obj] or mem[A] = B, Size bytes
	OpCall  // Dst = Callee(Args...); Dst may be NoReg
	OpRet   // return A (NoReg for void)
	OpJmp   // unconditional jump to Target
	OpBr    // if (A cond B) goto Target else Else
)

var opNames = [...]string{
	"const", "mov", "param", "add", "sub", "mul", "div", "rem", "and",
	"or", "xor", "shl", "shr", "neg", "bnot", "set", "addr", "load",
	"store", "call", "ret", "jmp", "br",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Cond is a branch/set condition code.
type Cond int

// Condition codes.
const (
	CondEq Cond = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
)

func (c Cond) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[c]
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEq:
		return CondNe
	case CondNe:
		return CondEq
	case CondLt:
		return CondGe
	case CondLe:
		return CondGt
	case CondGt:
		return CondLe
	case CondGe:
		return CondLt
	}
	return c
}

// Swap returns the condition with operands exchanged (a c b == b c.Swap a).
func (c Cond) Swap() Cond {
	switch c {
	case CondLt:
		return CondGt
	case CondLe:
		return CondGe
	case CondGt:
		return CondLt
	case CondGe:
		return CondLe
	}
	return c
}

// Eval applies the condition to two values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEq:
		return a == b
	case CondNe:
		return a != b
	case CondLt:
		return a < b
	case CondLe:
		return a <= b
	case CondGt:
		return a > b
	case CondGe:
		return a >= b
	}
	return false
}

// Instr is a single IR instruction. Which fields are meaningful depends
// on Op; unused register fields hold NoReg and Obj holds ObjNone.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Reg
	Imm  int64
	Obj  ObjID // direct memory operand for OpAddr/OpLoad/OpStore
	Size int   // access size in bytes for OpLoad/OpStore (1 or 8)
	Cond Cond  // for OpBr and OpSet

	Callee string
	Args   []Reg

	Target *Block // OpJmp target, OpBr taken target
	Else   *Block // OpBr fall-through (not-taken) target

	// Bookkeeping filled by Func.renumber.
	ID  int    // dense function-unique id
	PC  uint64 // simulated code address
	Blk *Block // containing block

	Pos minic.Pos
}

// IsTerm reports whether the instruction terminates a basic block.
func (in *Instr) IsTerm() bool {
	switch in.Op {
	case OpJmp, OpBr, OpRet:
		return true
	}
	return false
}

// IsDirectAccess reports whether a load/store names its object directly.
func (in *Instr) IsDirectAccess() bool { return in.Obj != ObjNone }

func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case OpParam:
		return fmt.Sprintf("r%d = param #%d", in.Dst, in.Imm)
	case OpNeg, OpBNot:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
	case OpSet:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, in.Cond, in.B)
	case OpAddr:
		return fmt.Sprintf("r%d = addr obj%d+%d", in.Dst, in.Obj, in.Imm)
	case OpLoad:
		if in.IsDirectAccess() {
			return fmt.Sprintf("r%d = load%d obj%d", in.Dst, in.Size, in.Obj)
		}
		return fmt.Sprintf("r%d = load%d [r%d]", in.Dst, in.Size, in.A)
	case OpStore:
		if in.IsDirectAccess() {
			return fmt.Sprintf("store%d obj%d, r%d", in.Size, in.Obj, in.B)
		}
		return fmt.Sprintf("store%d [r%d], r%d", in.Size, in.A, in.B)
	case OpCall:
		s := fmt.Sprintf("call %s%v", in.Callee, in.Args)
		if in.Dst != NoReg {
			s = fmt.Sprintf("r%d = %s", in.Dst, s)
		}
		return s
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.Target.Index)
	case OpBr:
		return fmt.Sprintf("br r%d %s r%d ? b%d : b%d", in.A, in.Cond, in.B,
			in.Target.Index, in.Else.Index)
	}
	return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
}

// Block is a basic block: straight-line instructions ended by a single
// terminator (the last instruction).
type Block struct {
	Index  int
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
}

// Term returns the block terminator, or nil for an unfinished block.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerm() {
		return nil
	}
	return t
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.Index) }

// Func is a lowered function.
type Func struct {
	Name   string
	Decl   *minic.FuncDecl
	Blocks []*Block
	Entry  *Block

	Params []ObjID // parameter objects in order
	Locals []ObjID // local objects in declaration order

	NumRegs int
	Instrs  []*Instr // all instructions indexed by Instr.ID
	Base    uint64   // code base address

	prog   *Program
	regDef []*Instr // register -> unique defining instruction
}

// Prog returns the containing program.
func (f *Func) Prog() *Program { return f.prog }

// NumBranches counts conditional branches.
func (f *Func) NumBranches() int {
	n := 0
	for _, in := range f.Instrs {
		if in.Op == OpBr {
			n++
		}
	}
	return n
}

// Branches returns the conditional branch instructions in ID order.
func (f *Func) Branches() []*Instr {
	var brs []*Instr
	for _, in := range f.Instrs {
		if in.Op == OpBr {
			brs = append(brs, in)
		}
	}
	return brs
}

// DefOf returns the unique defining instruction of r, or nil for
// parameterless values. Registers are single-assignment, so the def is
// unique; the table is built by renumber.
func (f *Func) DefOf(r Reg) *Instr {
	if r < 0 || int(r) >= len(f.regDef) {
		return nil
	}
	return f.regDef[r]
}

// renumber assigns dense instruction IDs, simulated PCs, block links and
// rebuilds the register-def table. Must be called after any structural
// change to the function.
func (f *Func) renumber() {
	f.Instrs = f.Instrs[:0]
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			in.PC = f.Base + uint64(4*id)
			in.Blk = b
			f.Instrs = append(f.Instrs, in)
			id++
		}
	}
	f.regDef = make([]*Instr, f.NumRegs)
	for _, in := range f.Instrs {
		if in.Dst != NoReg {
			f.regDef[in.Dst] = in
		}
	}
	f.rebuildEdges()
}

// rebuildEdges recomputes Preds/Succs from terminators.
func (f *Func) rebuildEdges() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpJmp:
			b.Succs = append(b.Succs, t.Target)
		case OpBr:
			b.Succs = append(b.Succs, t.Target, t.Else)
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Program is a fully lowered program.
type Program struct {
	Funcs   []*Func
	ByName  map[string]*Func
	Objects []*Object
	Strings []ObjID // string constant objects
	Source  *minic.Program
}

// Object returns the object with the given id.
func (p *Program) Object(id ObjID) *Object { return p.Objects[id] }

// FuncOf returns the function containing the given simulated PC, or nil.
func (p *Program) FuncOf(pc uint64) *Func {
	for _, f := range p.Funcs {
		if len(f.Instrs) == 0 {
			continue
		}
		if pc >= f.Base && pc < f.Base+uint64(4*len(f.Instrs)) {
			return f
		}
	}
	return nil
}
