package ir

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func lowerSrc(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Lower(mp, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func countOps(f *Func, op Op) int {
	n := 0
	for _, in := range f.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestLowerSimpleFunction(t *testing.T) {
	p := lowerSrc(t, `int add(int a, int b) { return a + b; }`, Options{})
	f := p.ByName["add"]
	if f == nil {
		t.Fatal("add not lowered")
	}
	// Prologue stores both params; body loads both.
	if got := countOps(f, OpParam); got != 2 {
		t.Errorf("params = %d, want 2", got)
	}
	if got := countOps(f, OpStore); got != 2 {
		t.Errorf("stores = %d, want 2", got)
	}
	if got := countOps(f, OpLoad); got != 2 {
		t.Errorf("loads = %d, want 2", got)
	}
	if got := countOps(f, OpRet); got != 1 {
		t.Errorf("rets = %d, want 1", got)
	}
}

func TestLowerRegistersSingleAssignment(t *testing.T) {
	p := lowerSrc(t, `
		int f(int n) {
			int s;
			s = 0;
			while (n > 0) { s = s + n; n = n - 1; }
			return s;
		}`, Options{})
	f := p.ByName["f"]
	defs := map[Reg]int{}
	for _, in := range f.Instrs {
		if in.Dst != NoReg {
			defs[in.Dst]++
		}
	}
	for r, n := range defs {
		if n != 1 {
			t.Errorf("register r%d defined %d times", r, n)
		}
	}
}

func TestLowerTerminatorsAndEdges(t *testing.T) {
	p := lowerSrc(t, `
		int f(int x) {
			if (x < 3) { return 1; }
			return 0;
		}`, Options{})
	f := p.ByName["f"]
	for _, b := range f.Blocks {
		if b.Term() == nil {
			t.Errorf("block b%d lacks a terminator", b.Index)
		}
	}
	br := f.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d, want 1", len(br))
	}
	if br[0].Cond != CondLt {
		t.Errorf("cond = %v, want <", br[0].Cond)
	}
	// Edge consistency: every succ lists us as pred.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, pb := range s.Preds {
				if pb == b {
					found = true
				}
			}
			if !found {
				t.Errorf("b%d -> b%d missing pred backlink", b.Index, s.Index)
			}
		}
	}
}

func TestLowerShortCircuit(t *testing.T) {
	p := lowerSrc(t, `
		int f(int a, int b) {
			if (a < 1 && b < 2) { return 1; }
			if (a > 3 || b > 4) { return 2; }
			return 0;
		}`, Options{})
	f := p.ByName["f"]
	if got := countOps(f, OpBr); got != 4 {
		t.Errorf("branches = %d, want 4 (two per condition)", got)
	}
}

func TestLowerWhileLoopShape(t *testing.T) {
	p := lowerSrc(t, `void f(int n) { while (n > 0) { n = n - 1; } }`, Options{})
	f := p.ByName["f"]
	br := f.Branches()
	if len(br) != 1 {
		t.Fatalf("branches = %d, want 1", len(br))
	}
	// The loop head must have two predecessors: entry and back edge.
	head := br[0].Blk
	if len(head.Preds) != 2 {
		t.Errorf("loop head preds = %d, want 2", len(head.Preds))
	}
}

func TestLowerBreakContinue(t *testing.T) {
	p := lowerSrc(t, `
		void f(int n) {
			while (1) {
				n = n - 1;
				if (n < 0) { break; }
				if (n == 5) { continue; }
				n = n - 2;
			}
		}`, Options{})
	f := p.ByName["f"]
	if got := countOps(f, OpBr); got != 2 {
		t.Errorf("branches = %d, want 2 (while(1) is a jmp)", got)
	}
}

func TestLowerDeadCodeAfterReturnPruned(t *testing.T) {
	p := lowerSrc(t, `
		int f() {
			return 1;
			return 2;
		}`, Options{})
	f := p.ByName["f"]
	if got := countOps(f, OpRet); got != 1 {
		t.Errorf("rets = %d, want 1 (dead return pruned)", got)
	}
}

func TestLowerImplicitReturn(t *testing.T) {
	p := lowerSrc(t, `void f() { } int g(int x) { if (x) { return 1; } }`, Options{})
	if got := countOps(p.ByName["f"], OpRet); got != 1 {
		t.Errorf("void f rets = %d, want 1", got)
	}
	if got := countOps(p.ByName["g"], OpRet); got != 2 {
		t.Errorf("g rets = %d, want 2 (explicit + implicit)", got)
	}
}

func TestLowerArrayIndexing(t *testing.T) {
	p := lowerSrc(t, `
		int a[10];
		int f(int i) { a[i] = 7; return a[i+1]; }`, Options{})
	f := p.ByName["f"]
	indirectLoads, indirectStores := 0, 0
	for _, in := range f.Instrs {
		if in.Op == OpLoad && !in.IsDirectAccess() {
			indirectLoads++
		}
		if in.Op == OpStore && !in.IsDirectAccess() {
			indirectStores++
		}
	}
	if indirectLoads != 1 || indirectStores != 1 {
		t.Errorf("indirect loads/stores = %d/%d, want 1/1", indirectLoads, indirectStores)
	}
	// int elements: index must be scaled by 8.
	if !strings.Contains(f.Dump(), "const 8") {
		t.Error("index scaling by 8 missing")
	}
}

func TestLowerCharArrayNoScaling(t *testing.T) {
	p := lowerSrc(t, `char b[8]; char f(int i) { return b[i]; }`, Options{})
	f := p.ByName["f"]
	if countOps(f, OpMul) != 0 {
		t.Error("char indexing should not scale")
	}
	for _, in := range f.Instrs {
		if in.Op == OpLoad && !in.IsDirectAccess() && in.Size != 1 {
			t.Errorf("char load size = %d, want 1", in.Size)
		}
	}
}

func TestLowerPointerArithmetic(t *testing.T) {
	p := lowerSrc(t, `int f(int* p) { return *(p + 2); }`, Options{})
	f := p.ByName["f"]
	if countOps(f, OpMul) != 1 {
		t.Error("pointer addition should scale by element size")
	}
}

func TestLowerStringLiterals(t *testing.T) {
	p := lowerSrc(t, `void f() { print_str("hello"); }`, Options{})
	if len(p.Strings) != 1 {
		t.Fatalf("strings = %d, want 1", len(p.Strings))
	}
	obj := p.Object(p.Strings[0])
	if string(obj.Data) != "hello\x00" {
		t.Errorf("string data = %q", obj.Data)
	}
	if obj.Size() != 6 {
		t.Errorf("string size = %d, want 6", obj.Size())
	}
}

func TestLowerGlobalInit(t *testing.T) {
	p := lowerSrc(t, `int g = 40 + 2; void f() { }`, Options{})
	var g *Object
	for _, o := range p.Objects {
		if o.Name == "g" {
			g = o
		}
	}
	if g == nil || g.Init != 42 {
		t.Fatalf("global g init = %+v", g)
	}
}

func TestLowerPCsAndFuncOf(t *testing.T) {
	p := lowerSrc(t, `void f() { } void g() { }`, Options{})
	f, g := p.ByName["f"], p.ByName["g"]
	if f.Base >= g.Base {
		t.Errorf("bases not increasing: %#x %#x", f.Base, g.Base)
	}
	for _, in := range f.Instrs {
		if p.FuncOf(in.PC) != f {
			t.Errorf("FuncOf(%#x) != f", in.PC)
		}
	}
	if p.FuncOf(0) != nil {
		t.Error("FuncOf(0) should be nil")
	}
	// PCs are dense and 4-aligned within a function.
	for i, in := range g.Instrs {
		if in.PC != g.Base+uint64(4*i) {
			t.Errorf("instr %d PC = %#x, want %#x", i, in.PC, g.Base+uint64(4*i))
		}
	}
}

func TestLowerDefOf(t *testing.T) {
	p := lowerSrc(t, `int f(int x) { return x + 1; }`, Options{})
	f := p.ByName["f"]
	for _, in := range f.Instrs {
		if in.Dst == NoReg {
			continue
		}
		if f.DefOf(in.Dst) != in {
			t.Errorf("DefOf(r%d) mismatch", in.Dst)
		}
	}
	if f.DefOf(NoReg) != nil {
		t.Error("DefOf(NoReg) should be nil")
	}
}

func TestForwardingRewritesReload(t *testing.T) {
	src := `
		int f() {
			int x;
			x = read_int();
			if (x < 5) { return 1; }
			return 0;
		}`
	noFwd := lowerSrc(t, src, Options{})
	fwd := lowerSrc(t, src, Options{Forwarding: true})
	lNo := countOps(noFwd.ByName["f"], OpLoad)
	lF := countOps(fwd.ByName["f"], OpLoad)
	if lF >= lNo {
		t.Errorf("forwarding did not remove loads: %d -> %d", lNo, lF)
	}
	// The branch operand must chain back to the stored register via Mov.
	f := fwd.ByName["f"]
	br := f.Branches()[0]
	def := f.DefOf(br.A)
	if def == nil || def.Op != OpMov {
		t.Errorf("branch operand def = %v, want mov", def)
	}
}

func TestForwardingBlockedByCall(t *testing.T) {
	// g may modify the global, so its value cannot be forwarded across
	// the call.
	src := `
		int g;
		void h() { g = 2; }
		int f() {
			int a;
			a = g;
			h();
			return g;
		}`
	p := lowerSrc(t, src, Options{Forwarding: true})
	f := p.ByName["f"]
	if got := countOps(f, OpLoad); got != 2 {
		t.Errorf("loads = %d, want 2 (reload after call)", got)
	}
}

func TestForwardingNotBlockedByPureBuiltin(t *testing.T) {
	src := `
		int f(char* s) {
			int a;
			a = read_int();
			print_int(strlen(s));
			return a;
		}`
	p := lowerSrc(t, src, Options{Forwarding: true})
	f := p.ByName["f"]
	// Pure builtins (read_int, strlen, print_int) kill nothing, so both
	// `a` and `s` forward from their defining stores (the prologue spill
	// for s) and no load survives in this single-block function.
	loads := countOps(f, OpLoad)
	if loads != 0 {
		t.Errorf("loads = %d, want 0 (all forwarded)", loads)
	}
}

func TestRegionPromotionRemovesCrossBlockReload(t *testing.T) {
	src := `
		int f() {
			int x;
			x = read_int();
			if (x < 5) {
				return x;
			}
			return 0;
		}`
	base := lowerSrc(t, src, Options{Forwarding: true})
	promo := lowerSrc(t, src, Options{Forwarding: true, RegionPromotion: true})
	lBase := countOps(base.ByName["f"], OpLoad)
	lPromo := countOps(promo.ByName["f"], OpLoad)
	if lPromo >= lBase {
		t.Errorf("promotion did not remove loads: %d -> %d", lBase, lPromo)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := lowerSrc(t, `int f(int x) { if (x) { return 1; } return 0; }`, Options{})
	d := p.Dump()
	for _, want := range []string{"func f", "br", "ret", "b0:"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestCondHelpers(t *testing.T) {
	conds := []Cond{CondEq, CondNe, CondLt, CondLe, CondGt, CondGe}
	for _, c := range conds {
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				if c.Eval(a, b) == c.Negate().Eval(a, b) {
					t.Errorf("%v and its negation agree on (%d,%d)", c, a, b)
				}
				if c.Eval(a, b) != c.Swap().Eval(b, a) {
					t.Errorf("%v swap mismatch on (%d,%d)", c, a, b)
				}
			}
		}
	}
}

func TestLowerValueContextLogical(t *testing.T) {
	p := lowerSrc(t, `int f(int a, int b) { int x; x = a && b; return x; }`, Options{})
	f := p.ByName["f"]
	if got := countOps(f, OpBr); got != 0 {
		t.Errorf("value-context && should not branch, got %d branches", got)
	}
	if got := countOps(f, OpSet); got != 2 {
		t.Errorf("set ops = %d, want 2", got)
	}
}

func TestLowerAddrOf(t *testing.T) {
	p := lowerSrc(t, `void f() { int x; int* p; p = &x; *p = 3; }`, Options{})
	f := p.ByName["f"]
	if got := countOps(f, OpAddr); got != 1 {
		t.Errorf("addr ops = %d, want 1", got)
	}
	var xObj *Object
	for _, o := range p.Objects {
		if strings.HasSuffix(o.Name, ".x") {
			xObj = o
		}
	}
	if xObj == nil || !xObj.AddrTaken {
		t.Error("x should be address-taken in IR")
	}
}

func TestLowerSwitchStructure(t *testing.T) {
	p := lowerSrc(t, `
		int f(int x) {
			switch (x) {
			case 1: return 10;
			case 2: return 20;
			default: return 30;
			}
		}`, Options{})
	f := p.ByName["f"]
	// One equality branch per non-default label.
	if got := countOps(f, OpBr); got != 2 {
		t.Errorf("branches = %d, want 2", got)
	}
	for _, br := range f.Branches() {
		if br.Cond != CondEq {
			t.Errorf("switch test cond = %v, want ==", br.Cond)
		}
	}
}

func TestLowerStructSplitObjects(t *testing.T) {
	p := lowerSrc(t, `
		struct S { int a; char buf[4]; int b; };
		int f() {
			struct S s;
			s.a = 1;
			s.b = 2;
			s.buf[0] = 'x';
			return s.a + s.b;
		}`, Options{})
	names := map[string]bool{}
	for _, o := range p.Objects {
		names[o.Name] = true
	}
	for _, want := range []string{"f.s.a", "f.s.b", "f.s.buf"} {
		if !names[want] {
			t.Errorf("missing split object %s", want)
		}
	}
	// Scalar field accesses are direct loads/stores.
	f := p.ByName["f"]
	direct := 0
	for _, in := range f.Instrs {
		if (in.Op == OpLoad || in.Op == OpStore) && in.IsDirectAccess() {
			if o := p.Object(in.Obj); o.Name == "f.s.a" || o.Name == "f.s.b" {
				direct++
			}
		}
	}
	if direct < 4 { // 2 stores + 2 loads
		t.Errorf("direct field accesses = %d, want >= 4", direct)
	}
}

func TestLowerStructBlobWhenEscaped(t *testing.T) {
	p := lowerSrc(t, `
		struct S { int a; int b; };
		void init(struct S* s) { s->a = 1; s->b = 2; }
		int f() {
			struct S s;
			init(&s);
			return s.a;
		}`, Options{})
	var blob *Object
	for _, o := range p.Objects {
		if o.Name == "f.s" {
			blob = o
		}
	}
	if blob == nil {
		t.Fatal("escaped struct must stay a single blob object")
	}
	if blob.Size() != 16 {
		t.Errorf("blob size = %d, want 16", blob.Size())
	}
	if !blob.AddrTaken || blob.IsScalar() {
		t.Error("blob must be address-taken and non-scalar")
	}
	// Field reads of the blob are indirect.
	f := p.ByName["f"]
	for _, in := range f.Instrs {
		if in.Op == OpLoad && in.IsDirectAccess() && p.Object(in.Obj).Name == "f.s" {
			t.Error("blob field access must not be a direct whole-object load")
		}
	}
}

func TestLowerArrowOffsets(t *testing.T) {
	p := lowerSrc(t, `
		struct S { int a; int b; };
		int get_b(struct S* s) { return s->b; }
		int f() {
			struct S s;
			s.b = 5;
			return get_b(&s);
		}`, Options{})
	// get_b must add field offset 8 to the pointer.
	g := p.ByName["get_b"]
	found := false
	for _, in := range g.Instrs {
		if in.Op == OpConst && in.Imm == 8 {
			found = true
		}
	}
	if !found {
		t.Error("arrow access missing the +8 field offset")
	}
}

func TestObjectAndOpStrings(t *testing.T) {
	p := lowerSrc(t, `int g; void f() { g = 1; }`, Options{})
	for _, o := range p.Objects {
		if o.String() == "" || o.Kind.String() == "" {
			t.Error("empty object strings")
		}
	}
	ops := []Op{OpConst, OpMov, OpParam, OpAdd, OpNeg, OpSet, OpAddr, OpLoad,
		OpStore, OpCall, OpRet, OpJmp, OpBr}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op formatting")
	}
	f := p.ByName["f"]
	for _, in := range f.Instrs {
		if in.String() == "" {
			t.Error("empty instruction string")
		}
	}
	if f.Prog() != p {
		t.Error("Prog backlink")
	}
	if f.NumBranches() != 0 {
		t.Error("f has no branches")
	}
}

func TestMustLowerPanicsOnBadProgram(t *testing.T) {
	// MustLower panics only on lowering failures, which sema-checked
	// programs do not produce; validate the happy path and the panic
	// wrapper via a nil-safe call.
	mp, err := minic.Compile(`int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	p := MustLower(mp, Options{})
	if p.ByName["main"] == nil {
		t.Fatal("MustLower lost main")
	}
}
