package ir

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func lowerInline(t *testing.T, src string) *Program {
	t.Helper()
	mp, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Lower(mp, Options{Forwarding: true, InlineSmall: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const inlineSrc = `
int g;
int clamp(int v) {
	if (v > 100) { return 100; }
	if (v < 0) { return 0; }
	return v;
}
int main() {
	g = read_int();
	return clamp(g) + clamp(5);
}`

func TestInlineExpandsLeafCalls(t *testing.T) {
	p := lowerInline(t, inlineSrc)
	main := p.ByName["main"]
	for _, in := range main.Instrs {
		if in.Op == OpCall && in.Callee == "clamp" {
			t.Fatal("clamp call not inlined")
		}
	}
	// Two inlined copies: main gains clamp's branches twice.
	if got := main.NumBranches(); got != 4 {
		t.Errorf("main branches = %d, want 4 (2 per inlined copy)", got)
	}
}

func TestInlineClonesFrameObjects(t *testing.T) {
	p := lowerInline(t, inlineSrc)
	main := p.ByName["main"]
	clones := 0
	for _, id := range main.Locals {
		if strings.Contains(p.Object(id).Name, ".inl.") {
			clones++
		}
	}
	if clones != 2 { // one param object per inlined copy
		t.Errorf("cloned objects = %d, want 2", clones)
	}
	// Each clone is owned by main.
	for _, id := range main.Locals {
		if p.Object(id).Fn != main {
			t.Errorf("local %s owned by %v", p.Object(id).Name, p.Object(id).Fn)
		}
	}
}

func TestInlineCountAndIdempotence(t *testing.T) {
	mp, err := minic.Compile(inlineSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := Inline(p, DefaultInlineOptions); n != 2 {
		t.Errorf("first pass expanded %d, want 2", n)
	}
	if n := Inline(p, DefaultInlineOptions); n != 0 {
		t.Errorf("second pass expanded %d, want 0", n)
	}
}

func TestInlineSkipsBigAndNonLeaf(t *testing.T) {
	mp, err := minic.Compile(`
		int leafish(int v) { return v + 1; }
		int caller2(int v) { return leafish(v) * 2; }
		int main() { return caller2(3); }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny MaxInstrs nothing qualifies.
	if n := Inline(p, InlineOptions{MaxInstrs: 1, MaxGrowth: 4}); n != 0 {
		t.Errorf("expanded %d with MaxInstrs=1", n)
	}
	// With defaults: leafish inlines into caller2 and main's call to
	// caller2 stays (caller2 is not a leaf at scan time).
	n := Inline(p, DefaultInlineOptions)
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	main := p.ByName["main"]
	foundCall := false
	for _, in := range main.Instrs {
		if in.Op == OpCall && in.Callee == "caller2" {
			foundCall = true
		}
	}
	if !foundCall {
		t.Error("non-leaf caller2 should not be inlined into main")
	}
}

func TestInlineGrowthBudget(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int leaf(int v) { if (v > 3) { return v; } return v + 1; }\n")
	sb.WriteString("int main() {\n int s;\n s = 0;\n")
	for i := 0; i < 50; i++ {
		sb.WriteString(" s = s + leaf(s);\n")
	}
	sb.WriteString(" return s;\n}\n")
	mp, err := minic.Compile(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(p.ByName["main"].Instrs)
	Inline(p, InlineOptions{MaxInstrs: 40, MaxGrowth: 2})
	after := len(p.ByName["main"].Instrs)
	if after > 2*before+60 { // small slack for the final expansion
		t.Errorf("growth budget exceeded: %d -> %d", before, after)
	}
	// Some calls must remain.
	remaining := 0
	for _, in := range p.ByName["main"].Instrs {
		if in.Op == OpCall && in.Callee == "leaf" {
			remaining++
		}
	}
	if remaining == 0 {
		t.Error("budget should have stopped inlining before all 50 sites")
	}
}

func TestInlinePreservesPCInvariants(t *testing.T) {
	p := lowerInline(t, inlineSrc)
	for _, fn := range p.Funcs {
		for i, in := range fn.Instrs {
			if in.ID != i {
				t.Fatalf("%s: instr %d has ID %d", fn.Name, i, in.ID)
			}
			if in.PC != fn.Base+uint64(4*i) {
				t.Fatalf("%s: PC misassigned after inline", fn.Name)
			}
			if in.Blk == nil || in.Blk.Fn != fn {
				t.Fatalf("%s: block backlink broken", fn.Name)
			}
		}
		if p.FuncOf(fn.Base) != fn {
			t.Fatalf("FuncOf broken for %s", fn.Name)
		}
	}
}
