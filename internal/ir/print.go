package ir

import (
	"fmt"
	"strings"
)

// Dump renders the function as readable text, one block per paragraph.
// Intended for tests and the ipdsc -dump flag.
func (f *Func) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (base %#x, %d regs)\n", f.Name, f.Base, f.NumRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.Index)
		if len(blk.Preds) > 0 {
			fmt.Fprintf(&b, " ; preds:")
			for _, p := range blk.Preds {
				fmt.Fprintf(&b, " b%d", p.Index)
			}
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %4d  %s\n", in.ID, in.String())
		}
	}
	return b.String()
}

// Dump renders the whole program.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, o := range p.Objects {
		fmt.Fprintf(&b, "obj%-3d %-8s %-20s", o.ID, o.Kind, o.Name)
		if o.Kind == ObjString {
			fmt.Fprintf(&b, " %q", string(o.Data))
		} else {
			fmt.Fprintf(&b, " %s", o.Type)
			if o.AddrTaken {
				b.WriteString(" (addr-taken)")
			}
		}
		b.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		b.WriteByte('\n')
		b.WriteString(f.Dump())
	}
	return b.String()
}
