package ir

import "repro/internal/minic"

// killsForCall returns a conservative predicate deciding whether a call
// to callee invalidates a forwarded value of obj. Builtins kill exactly
// the objects reachable through their written pointer parameters
// (approximated as all address-taken objects); unknown callees
// additionally kill every global.
func killsForCall(prog *Program, callee string) func(*Object) bool {
	if bi := minic.Builtins[callee]; bi != nil {
		if len(bi.WritesParams) == 0 {
			return func(*Object) bool { return false }
		}
		return func(o *Object) bool { return o.AddrTaken }
	}
	// User function: may write globals directly and caller memory
	// through escaped pointers.
	return func(o *Object) bool { return o.Kind == ObjGlobal || o.AddrTaken }
}

// forwardStores performs forwarding of memory values to later reads
// within each basic block: a direct load of a scalar object whose value
// is already in a register (from an earlier store or load in the same
// block, with no intervening kill) becomes a register move.
//
// This is the pass that surfaces the paper's store→load correlations:
// after `user = verify()` the branch `if (user == 1)` tests the stored
// register directly, so a branch direction constrains the stored value.
func forwardStores(fn *Func) {
	for _, b := range fn.Blocks {
		forwardInBlock(fn, b, map[ObjID]Reg{})
	}
	fn.renumber()
}

// promoteRegionLoads extends forwarding across extended basic blocks:
// blocks with a unique predecessor inherit the predecessor's forwarded
// values. It emulates a register allocator keeping variables in
// registers across branches, which removes reloads and with them some
// of the correlations the detector relies on (the paper's observation
// that compiler optimization lowers the detection rate). Used by the
// ablation experiment.
func promoteRegionLoads(fn *Func) {
	availOut := make(map[*Block]map[ObjID]Reg, len(fn.Blocks))
	for _, b := range fn.Blocks { // blocks are in lowering order: preds usually first
		avail := map[ObjID]Reg{}
		if len(b.Preds) == 1 {
			if out := availOut[b.Preds[0]]; out != nil {
				for k, v := range out {
					avail[k] = v
				}
			}
		}
		availOut[b] = forwardInBlock(fn, b, avail)
	}
	fn.renumber()
}

// forwardInBlock rewrites eligible loads in b given values already
// available at entry, returning the values available at exit.
func forwardInBlock(fn *Func, b *Block, avail map[ObjID]Reg) map[ObjID]Reg {
	prog := fn.prog
	for _, in := range b.Instrs {
		switch in.Op {
		case OpLoad:
			if !in.IsDirectAccess() {
				// Indirect load: no forwarding (unknown object), and no
				// kill (loads do not modify memory).
				continue
			}
			obj := prog.Object(in.Obj)
			// Only full-width scalars forward: a char store truncates
			// to one byte in memory, which the stored register does not
			// reflect.
			if !obj.IsScalar() || in.Size != 8 {
				continue
			}
			if r, ok := avail[in.Obj]; ok {
				in.Op = OpMov
				in.A = r
				in.Obj = ObjNone
				in.Size = 0
			} else {
				avail[in.Obj] = in.Dst
			}
		case OpStore:
			if in.IsDirectAccess() {
				obj := prog.Object(in.Obj)
				if obj.IsScalar() && in.Size == 8 {
					avail[in.Obj] = in.B
					continue
				}
				delete(avail, in.Obj)
				continue
			}
			// Indirect store: kills every address-taken object.
			for id := range avail {
				if prog.Object(id).AddrTaken {
					delete(avail, id)
				}
			}
		case OpCall:
			kills := killsForCall(prog, in.Callee)
			for id := range avail {
				if kills(prog.Object(id)) {
					delete(avail, id)
				}
			}
		}
	}
	return avail
}
