package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Options controls lowering and the post-lowering cleanup passes.
type Options struct {
	// Forwarding enables block-local store-to-load forwarding. It is
	// the pass that makes store→load branch correlations visible (the
	// branch then tests the still-in-register stored value, as in the
	// paper's Figure 3.b) and is on in the default pipeline.
	Forwarding bool

	// RegionPromotion additionally forwards repeated loads of the same
	// variable within a branch region, emulating a more aggressive
	// register allocator. It shrinks the window in which tampering is
	// observable — the paper's "compiler optimizations can remove some
	// correlations" effect — and exists for the ablation experiment.
	RegionPromotion bool

	// InlineSmall expands calls to small leaf functions before the
	// analyses run, extending the function-local correlation analysis
	// across former call boundaries (the repository's future-work
	// extension; see inline.go).
	InlineSmall bool
}

// DefaultOptions is the standard pipeline used by the paper-equivalent
// compiler: forwarding on, aggressive promotion off.
var DefaultOptions = Options{Forwarding: true}

// Lower converts a checked MiniC program into IR.
func Lower(src *minic.Program, opts Options) (*Program, error) {
	lw := &lowerer{
		prog: &Program{
			ByName: map[string]*Func{},
			Source: src,
		},
		objBySym:  map[*minic.Symbol]ObjID{},
		fieldObjs: map[*minic.Symbol]map[int]ObjID{},
	}
	if err := lw.run(src, opts); err != nil {
		return nil, err
	}
	return lw.prog, nil
}

// MustLower is Lower for inputs known to be valid (tests, examples).
func MustLower(src *minic.Program, opts Options) *Program {
	p, err := Lower(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

type lowerer struct {
	prog     *Program
	objBySym map[*minic.Symbol]ObjID
	// fieldObjs maps split struct variables to their per-field
	// objects, keyed by Field.Index.
	fieldObjs map[*minic.Symbol]map[int]ObjID

	fn   *Func
	cur  *Block
	dead bool // current position follows a terminator

	breaks    []*Block
	continues []*Block
}

func (lw *lowerer) run(src *minic.Program, opts Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(lowerError); ok {
				err = fmt.Errorf("lower: %s", string(le))
				return
			}
			panic(r)
		}
	}()

	// Globals.
	for _, g := range src.File.Globals {
		ids := lw.declareVar(g.Sym, g.Name, ObjGlobal, nil)
		if g.Init != nil {
			v, ok := minic.ConstEval(g.Init)
			if !ok {
				return fmt.Errorf("lower: global %s: non-constant initializer", g.Name)
			}
			lw.prog.Object(ids[0]).Init = v
		}
	}
	// String constants.
	for i, s := range src.Strings {
		obj := lw.newObject(fmt.Sprintf(".str%d", i), ObjString, nil, nil)
		obj.Data = append([]byte(s), 0)
		lw.prog.Strings = append(lw.prog.Strings, obj.ID)
	}
	// Functions.
	for _, fd := range src.Funcs {
		fn := &Func{Name: fd.Name, Decl: fd, prog: lw.prog}
		lw.prog.Funcs = append(lw.prog.Funcs, fn)
		lw.prog.ByName[fd.Name] = fn
		for i, p := range fd.Params {
			obj := lw.newObject(fd.Name+"."+p.Name, ObjParam, p.Sym.Type, fn)
			obj.AddrTaken = p.Sym.AddrTaken
			obj.ParamIndex = i
			lw.objBySym[p.Sym] = obj.ID
			fn.Params = append(fn.Params, obj.ID)
		}
		for _, d := range fd.Locals {
			ids := lw.declareVar(d.Sym, fd.Name+"."+d.Name, ObjLocal, fn)
			fn.Locals = append(fn.Locals, ids...)
		}
	}
	for _, fn := range lw.prog.Funcs {
		lw.lowerFunc(fn)
	}

	// Assign code base addresses and renumber. Bases are spaced so no
	// two functions share a hash-relevant address neighbourhood.
	AssignBases(lw.prog)

	if opts.InlineSmall {
		Inline(lw.prog, DefaultInlineOptions)
	}

	for _, fn := range lw.prog.Funcs {
		if opts.Forwarding {
			forwardStores(fn)
		}
		if opts.RegionPromotion {
			promoteRegionLoads(fn)
		}
	}
	return nil
}

type lowerError string

func (lw *lowerer) failf(format string, args ...any) {
	panic(lowerError(fmt.Sprintf(format, args...)))
}

func (lw *lowerer) newObject(name string, kind ObjKind, typ *minic.Type, fn *Func) *Object {
	obj := &Object{
		ID:   ObjID(len(lw.prog.Objects)),
		Name: name,
		Kind: kind,
		Type: typ,
		Fn:   fn,
	}
	lw.prog.Objects = append(lw.prog.Objects, obj)
	return obj
}

// declareVar creates the object(s) backing a variable. Struct
// variables whose whole address never escapes are split into one
// object per field (field-sensitive analysis); escaped structs become
// a single conservative blob.
func (lw *lowerer) declareVar(sym *minic.Symbol, name string, kind ObjKind, fn *Func) []ObjID {
	if sym.Type.Kind == minic.TypeStruct && !sym.AddrTaken {
		def := sym.Type.Struct
		byIdx := map[int]ObjID{}
		lw.fieldObjs[sym] = byIdx
		out := make([]ObjID, 0, len(def.Fields))
		for _, f := range def.Fields {
			obj := lw.newObject(name+"."+f.Name, kind, f.Type, fn)
			obj.AddrTaken = sym.FieldAddrTaken[f.Index] || f.Type.Kind == minic.TypeArray
			byIdx[f.Index] = obj.ID
			out = append(out, obj.ID)
		}
		return out
	}
	obj := lw.newObject(name, kind, sym.Type, fn)
	obj.AddrTaken = sym.AddrTaken
	lw.objBySym[sym] = obj.ID
	return []ObjID{obj.ID}
}

func (lw *lowerer) objOf(sym *minic.Symbol) ObjID {
	id, ok := lw.objBySym[sym]
	if !ok {
		lw.failf("no object for symbol %s", sym.Name)
	}
	return id
}

func (lw *lowerer) newReg() Reg {
	r := Reg(lw.fn.NumRegs)
	lw.fn.NumRegs++
	return r
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{Index: len(lw.fn.Blocks), Fn: lw.fn}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) setBlock(b *Block) {
	lw.cur = b
	lw.dead = false
}

func (lw *lowerer) emit(in *Instr) *Instr {
	if lw.dead {
		// Unreachable code after a terminator: emit into a throwaway
		// block that the reachability prune removes.
		lw.setBlock(lw.newBlock())
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
	if in.IsTerm() {
		lw.dead = true
	}
	return in
}

func (lw *lowerer) emitConst(v int64, pos minic.Pos) Reg {
	r := lw.newReg()
	lw.emit(&Instr{Op: OpConst, Dst: r, A: NoReg, B: NoReg, Obj: ObjNone, Imm: v, Pos: pos})
	return r
}

func (lw *lowerer) emitBin(op Op, a, b Reg, pos minic.Pos) Reg {
	r := lw.newReg()
	lw.emit(&Instr{Op: op, Dst: r, A: a, B: b, Obj: ObjNone, Pos: pos})
	return r
}

func (lw *lowerer) emitJmp(target *Block, pos minic.Pos) {
	lw.emit(&Instr{Op: OpJmp, Dst: NoReg, A: NoReg, B: NoReg, Obj: ObjNone, Target: target, Pos: pos})
}

func (lw *lowerer) emitBr(cond Cond, a, b Reg, t, f *Block, pos minic.Pos) {
	lw.emit(&Instr{Op: OpBr, Dst: NoReg, A: a, B: b, Obj: ObjNone, Cond: cond,
		Target: t, Else: f, Pos: pos})
}

func (lw *lowerer) lowerFunc(fn *Func) {
	lw.fn = fn
	lw.cur = nil
	lw.dead = false
	entry := lw.newBlock()
	fn.Entry = entry
	lw.setBlock(entry)

	// Prologue: spill incoming arguments to their parameter slots, so
	// parameters are memory-resident like in unoptimized C code.
	for i, objID := range fn.Params {
		r := lw.newReg()
		lw.emit(&Instr{Op: OpParam, Dst: r, A: NoReg, B: NoReg, Obj: ObjNone,
			Imm: int64(i), Pos: fn.Decl.Pos})
		obj := lw.prog.Object(objID)
		lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: NoReg, B: r, Obj: objID,
			Size: obj.Type.Size(), Pos: fn.Decl.Pos})
	}

	lw.lowerStmt(fn.Decl.Body)

	// Implicit return for functions that fall off the end.
	if !lw.dead {
		if fn.Decl.Ret.Kind == minic.TypeVoid {
			lw.emit(&Instr{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg, Obj: ObjNone})
		} else {
			z := lw.emitConst(0, fn.Decl.Pos)
			lw.emit(&Instr{Op: OpRet, Dst: NoReg, A: z, B: NoReg, Obj: ObjNone})
		}
	}
	lw.pruneUnreachable()
}

func (lw *lowerer) pruneUnreachable() {
	fn := lw.fn
	fn.rebuildEdges()
	seen := map[*Block]bool{fn.Entry: true}
	work := []*Block{fn.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	kept := fn.Blocks[:0]
	for _, b := range fn.Blocks {
		if seen[b] {
			b.Index = len(kept)
			kept = append(kept, b)
		}
	}
	fn.Blocks = kept
	fn.rebuildEdges()
}

func (lw *lowerer) lowerStmt(s minic.Stmt) {
	switch s := s.(type) {
	case *minic.BlockStmt:
		for _, st := range s.Stmts {
			lw.lowerStmt(st)
		}
	case *minic.DeclStmt:
		if s.Decl.Init != nil {
			v := lw.evalExpr(s.Decl.Init)
			obj := lw.objOf(s.Decl.Sym)
			lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: NoReg, B: v, Obj: obj,
				Size: s.Decl.Sym.Type.Size(), Pos: s.Decl.Pos})
		}
	case *minic.IfStmt:
		then := lw.newBlock()
		join := lw.newBlock()
		els := join
		if s.Else != nil {
			els = lw.newBlock()
		}
		lw.lowerCond(s.Cond, then, els)
		lw.setBlock(then)
		lw.lowerStmt(s.Then)
		if !lw.dead {
			lw.emitJmp(join, s.Pos)
		}
		if s.Else != nil {
			lw.setBlock(els)
			lw.lowerStmt(s.Else)
			if !lw.dead {
				lw.emitJmp(join, s.Pos)
			}
		}
		lw.setBlock(join)
	case *minic.WhileStmt:
		head := lw.newBlock()
		body := lw.newBlock()
		exit := lw.newBlock()
		lw.emitJmp(head, s.Pos)
		lw.setBlock(head)
		lw.lowerCond(s.Cond, body, exit)
		lw.breaks = append(lw.breaks, exit)
		lw.continues = append(lw.continues, head)
		lw.setBlock(body)
		lw.lowerStmt(s.Body)
		if !lw.dead {
			lw.emitJmp(head, s.Pos)
		}
		lw.breaks = lw.breaks[:len(lw.breaks)-1]
		lw.continues = lw.continues[:len(lw.continues)-1]
		lw.setBlock(exit)
	case *minic.ForStmt:
		if s.Init != nil {
			lw.lowerStmt(s.Init)
		}
		head := lw.newBlock()
		body := lw.newBlock()
		post := lw.newBlock()
		exit := lw.newBlock()
		lw.emitJmp(head, s.Pos)
		lw.setBlock(head)
		if s.Cond != nil {
			lw.lowerCond(s.Cond, body, exit)
		} else {
			lw.emitJmp(body, s.Pos)
		}
		lw.breaks = append(lw.breaks, exit)
		lw.continues = append(lw.continues, post)
		lw.setBlock(body)
		lw.lowerStmt(s.Body)
		if !lw.dead {
			lw.emitJmp(post, s.Pos)
		}
		lw.breaks = lw.breaks[:len(lw.breaks)-1]
		lw.continues = lw.continues[:len(lw.continues)-1]
		lw.setBlock(post)
		if s.Post != nil {
			lw.evalExpr(s.Post)
		}
		lw.emitJmp(head, s.Pos)
		lw.setBlock(exit)
	case *minic.SwitchStmt:
		tag := lw.evalExpr(s.Tag)
		exit := lw.newBlock()
		bodies := make([]*Block, len(s.Entries))
		for i := range s.Entries {
			bodies[i] = lw.newBlock()
		}
		// Test chain: one equality branch per case label, in source
		// order; the miss path falls to the default body (or the exit).
		defaultIdx := -1
		for i, e := range s.Entries {
			if e.IsDefault {
				defaultIdx = i
				continue
			}
			c := lw.emitConst(e.Val, e.Pos)
			next := lw.newBlock()
			lw.emitBr(CondEq, tag, c, bodies[i], next, e.Pos)
			lw.setBlock(next)
		}
		if defaultIdx >= 0 {
			lw.emitJmp(bodies[defaultIdx], s.Pos)
		} else {
			lw.emitJmp(exit, s.Pos)
		}
		// Bodies with C fallthrough; break exits the switch.
		lw.breaks = append(lw.breaks, exit)
		for i, e := range s.Entries {
			lw.setBlock(bodies[i])
			for _, st := range e.Stmts {
				lw.lowerStmt(st)
			}
			if !lw.dead {
				if i+1 < len(s.Entries) {
					lw.emitJmp(bodies[i+1], s.Pos)
				} else {
					lw.emitJmp(exit, s.Pos)
				}
			}
		}
		lw.breaks = lw.breaks[:len(lw.breaks)-1]
		lw.setBlock(exit)
	case *minic.ReturnStmt:
		if s.Value == nil {
			lw.emit(&Instr{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg, Obj: ObjNone, Pos: s.Pos})
			return
		}
		v := lw.evalExpr(s.Value)
		lw.emit(&Instr{Op: OpRet, Dst: NoReg, A: v, B: NoReg, Obj: ObjNone, Pos: s.Pos})
	case *minic.BreakStmt:
		lw.emitJmp(lw.breaks[len(lw.breaks)-1], s.Pos)
	case *minic.ContinueStmt:
		lw.emitJmp(lw.continues[len(lw.continues)-1], s.Pos)
	case *minic.ExprStmt:
		lw.evalExpr(s.X)
	default:
		lw.failf("unhandled statement %T", s)
	}
}

// lowerCond lowers a boolean expression as control flow with
// short-circuit evaluation, branching to t or f.
func (lw *lowerer) lowerCond(e minic.Expr, t, f *Block) {
	switch e := e.(type) {
	case *minic.BinaryExpr:
		switch e.Op {
		case minic.BLogAnd:
			mid := lw.newBlock()
			lw.lowerCond(e.L, mid, f)
			lw.setBlock(mid)
			lw.lowerCond(e.R, t, f)
			return
		case minic.BLogOr:
			mid := lw.newBlock()
			lw.lowerCond(e.L, t, mid)
			lw.setBlock(mid)
			lw.lowerCond(e.R, t, f)
			return
		case minic.BLt, minic.BLe, minic.BGt, minic.BGe, minic.BEq, minic.BNe:
			a := lw.evalExpr(e.L)
			b := lw.evalExpr(e.R)
			lw.emitBr(condOf(e.Op), a, b, t, f, exprPos(e))
			return
		}
	case *minic.UnaryExpr:
		if e.Op == minic.UNot {
			lw.lowerCond(e.X, f, t)
			return
		}
	case *minic.IntLit:
		// Constant conditions (while(1)) lower to unconditional jumps.
		if e.Value != 0 {
			lw.emitJmp(t, exprPos(e))
		} else {
			lw.emitJmp(f, exprPos(e))
		}
		return
	}
	v := lw.evalExpr(e)
	z := lw.emitConst(0, exprPos(e))
	lw.emitBr(CondNe, v, z, t, f, exprPos(e))
}

func condOf(op minic.BinaryOp) Cond {
	switch op {
	case minic.BLt:
		return CondLt
	case minic.BLe:
		return CondLe
	case minic.BGt:
		return CondGt
	case minic.BGe:
		return CondGe
	case minic.BEq:
		return CondEq
	case minic.BNe:
		return CondNe
	}
	panic("not a comparison")
}

// evalExpr lowers an expression for its value, returning the register
// holding the result.
func (lw *lowerer) evalExpr(e minic.Expr) Reg {
	switch e := e.(type) {
	case *minic.IntLit:
		return lw.emitConst(e.Value, exprPos(e))
	case *minic.CharLit:
		return lw.emitConst(int64(e.Value), exprPos(e))
	case *minic.StrLit:
		r := lw.newReg()
		lw.emit(&Instr{Op: OpAddr, Dst: r, A: NoReg, B: NoReg,
			Obj: lw.prog.Strings[e.Index], Pos: exprPos(e)})
		return r
	case *minic.Ident:
		sym := e.Sym
		obj := lw.objOf(sym)
		if sym.Type.Kind == minic.TypeArray {
			r := lw.newReg()
			lw.emit(&Instr{Op: OpAddr, Dst: r, A: NoReg, B: NoReg, Obj: obj, Pos: exprPos(e)})
			return r
		}
		r := lw.newReg()
		lw.emit(&Instr{Op: OpLoad, Dst: r, A: NoReg, B: NoReg, Obj: obj,
			Size: sym.Type.Size(), Pos: exprPos(e)})
		return r
	case *minic.IndexExpr:
		addr, size := lw.indexAddr(e)
		r := lw.newReg()
		lw.emit(&Instr{Op: OpLoad, Dst: r, A: addr, B: NoReg, Obj: ObjNone,
			Size: size, Pos: exprPos(e)})
		return r
	case *minic.MemberExpr:
		return lw.evalMember(e)
	case *minic.UnaryExpr:
		return lw.evalUnary(e)
	case *minic.BinaryExpr:
		return lw.evalBinary(e)
	case *minic.AssignExpr:
		return lw.lowerAssign(e)
	case *minic.CallExpr:
		return lw.lowerCall(e)
	}
	lw.failf("unhandled expression %T", e)
	return NoReg
}

func (lw *lowerer) evalUnary(e *minic.UnaryExpr) Reg {
	switch e.Op {
	case minic.UNeg:
		a := lw.evalExpr(e.X)
		r := lw.newReg()
		lw.emit(&Instr{Op: OpNeg, Dst: r, A: a, B: NoReg, Obj: ObjNone, Pos: exprPos(e)})
		return r
	case minic.UBNot:
		a := lw.evalExpr(e.X)
		r := lw.newReg()
		lw.emit(&Instr{Op: OpBNot, Dst: r, A: a, B: NoReg, Obj: ObjNone, Pos: exprPos(e)})
		return r
	case minic.UNot:
		a := lw.evalExpr(e.X)
		z := lw.emitConst(0, exprPos(e))
		r := lw.newReg()
		lw.emit(&Instr{Op: OpSet, Dst: r, A: a, B: z, Cond: CondEq, Obj: ObjNone, Pos: exprPos(e)})
		return r
	case minic.UDeref:
		p := lw.evalExpr(e.X)
		r := lw.newReg()
		lw.emit(&Instr{Op: OpLoad, Dst: r, A: p, B: NoReg, Obj: ObjNone,
			Size: e.TypeOf().Size(), Pos: exprPos(e)})
		return r
	case minic.UAddr:
		return lw.lvalueAddr(e.X)
	}
	lw.failf("unhandled unary %v", e.Op)
	return NoReg
}

// lvalueAddr returns a register holding the address of an lvalue.
func (lw *lowerer) lvalueAddr(e minic.Expr) Reg {
	switch e := e.(type) {
	case *minic.Ident:
		r := lw.newReg()
		lw.emit(&Instr{Op: OpAddr, Dst: r, A: NoReg, B: NoReg,
			Obj: lw.objOf(e.Sym), Pos: exprPos(e)})
		return r
	case *minic.IndexExpr:
		addr, _ := lw.indexAddr(e)
		return addr
	case *minic.MemberExpr:
		if obj, ok := lw.splitFieldObj(e); ok {
			r := lw.newReg()
			lw.emit(&Instr{Op: OpAddr, Dst: r, A: NoReg, B: NoReg,
				Obj: obj, Pos: exprPos(e)})
			return r
		}
		return lw.memberAddr(e)
	case *minic.UnaryExpr:
		if e.Op == minic.UDeref {
			return lw.evalExpr(e.X)
		}
	}
	lw.failf("not an addressable lvalue: %T", e)
	return NoReg
}

// splitFieldObj resolves s.f to its dedicated field object when the
// struct variable is split.
func (lw *lowerer) splitFieldObj(e *minic.MemberExpr) (ObjID, bool) {
	if e.Arrow || e.Field == nil {
		return ObjNone, false
	}
	id, ok := e.Base.(*minic.Ident)
	if !ok {
		return ObjNone, false
	}
	byIdx, ok := lw.fieldObjs[id.Sym]
	if !ok {
		return ObjNone, false
	}
	obj, ok := byIdx[e.Field.Index]
	return obj, ok
}

// memberAddr computes the address of a blob or pointer-based member
// access: base address plus the field's layout offset.
func (lw *lowerer) memberAddr(e *minic.MemberExpr) Reg {
	var base Reg
	if e.Arrow {
		base = lw.evalExpr(e.Base)
	} else {
		base = lw.lvalueAddr(e.Base)
	}
	if e.Field.Offset == 0 {
		return base
	}
	off := lw.emitConst(int64(e.Field.Offset), exprPos(e))
	return lw.emitBin(OpAdd, base, off, exprPos(e))
}

// evalMember loads s.f / p->f (array fields decay to their address).
func (lw *lowerer) evalMember(e *minic.MemberExpr) Reg {
	f := e.Field
	if obj, ok := lw.splitFieldObj(e); ok {
		r := lw.newReg()
		if f.Type.Kind == minic.TypeArray {
			lw.emit(&Instr{Op: OpAddr, Dst: r, A: NoReg, B: NoReg, Obj: obj, Pos: exprPos(e)})
			return r
		}
		lw.emit(&Instr{Op: OpLoad, Dst: r, A: NoReg, B: NoReg, Obj: obj,
			Size: f.Type.Size(), Pos: exprPos(e)})
		return r
	}
	addr := lw.memberAddr(e)
	if f.Type.Kind == minic.TypeArray {
		return addr
	}
	r := lw.newReg()
	lw.emit(&Instr{Op: OpLoad, Dst: r, A: addr, B: NoReg, Obj: ObjNone,
		Size: f.Type.Size(), Pos: exprPos(e)})
	return r
}

// indexAddr computes the address of base[idx] and the element size.
func (lw *lowerer) indexAddr(e *minic.IndexExpr) (Reg, int) {
	base := lw.evalExpr(e.Base) // array decays to base address
	idx := lw.evalExpr(e.Index)
	elem := e.TypeOf()
	size := elem.Size()
	scaled := idx
	if size != 1 {
		s := lw.emitConst(int64(size), exprPos(e))
		scaled = lw.emitBin(OpMul, idx, s, exprPos(e))
	}
	return lw.emitBin(OpAdd, base, scaled, exprPos(e)), size
}

func (lw *lowerer) evalBinary(e *minic.BinaryExpr) Reg {
	lt := decayType(e.L.TypeOf())
	rt := decayType(e.R.TypeOf())
	switch e.Op {
	case minic.BLogAnd, minic.BLogOr:
		// Value-context logical ops evaluate both operands (no short
		// circuit); condition context goes through lowerCond instead.
		a := lw.evalExpr(e.L)
		b := lw.evalExpr(e.R)
		z := lw.emitConst(0, exprPos(e))
		an := lw.newReg()
		lw.emit(&Instr{Op: OpSet, Dst: an, A: a, B: z, Cond: CondNe, Obj: ObjNone, Pos: exprPos(e)})
		bn := lw.newReg()
		lw.emit(&Instr{Op: OpSet, Dst: bn, A: b, B: z, Cond: CondNe, Obj: ObjNone, Pos: exprPos(e)})
		op := OpAnd
		if e.Op == minic.BLogOr {
			op = OpOr
		}
		return lw.emitBin(op, an, bn, exprPos(e))
	case minic.BLt, minic.BLe, minic.BGt, minic.BGe, minic.BEq, minic.BNe:
		a := lw.evalExpr(e.L)
		b := lw.evalExpr(e.R)
		r := lw.newReg()
		lw.emit(&Instr{Op: OpSet, Dst: r, A: a, B: b, Cond: condOf(e.Op), Obj: ObjNone, Pos: exprPos(e)})
		return r
	case minic.BAdd:
		a := lw.evalExpr(e.L)
		b := lw.evalExpr(e.R)
		switch {
		case lt.Kind == minic.TypePointer && rt.IsArith():
			return lw.emitBin(OpAdd, a, lw.scale(b, lt.Elem.Size(), exprPos(e)), exprPos(e))
		case lt.IsArith() && rt.Kind == minic.TypePointer:
			return lw.emitBin(OpAdd, lw.scale(a, rt.Elem.Size(), exprPos(e)), b, exprPos(e))
		default:
			return lw.emitBin(OpAdd, a, b, exprPos(e))
		}
	case minic.BSub:
		a := lw.evalExpr(e.L)
		b := lw.evalExpr(e.R)
		switch {
		case lt.Kind == minic.TypePointer && rt.Kind == minic.TypePointer:
			diff := lw.emitBin(OpSub, a, b, exprPos(e))
			if s := lt.Elem.Size(); s != 1 {
				sz := lw.emitConst(int64(s), exprPos(e))
				return lw.emitBin(OpDiv, diff, sz, exprPos(e))
			}
			return diff
		case lt.Kind == minic.TypePointer && rt.IsArith():
			return lw.emitBin(OpSub, a, lw.scale(b, lt.Elem.Size(), exprPos(e)), exprPos(e))
		default:
			return lw.emitBin(OpSub, a, b, exprPos(e))
		}
	}
	a := lw.evalExpr(e.L)
	b := lw.evalExpr(e.R)
	var op Op
	switch e.Op {
	case minic.BMul:
		op = OpMul
	case minic.BDiv:
		op = OpDiv
	case minic.BRem:
		op = OpRem
	case minic.BAnd:
		op = OpAnd
	case minic.BOr:
		op = OpOr
	case minic.BXor:
		op = OpXor
	case minic.BShl:
		op = OpShl
	case minic.BShr:
		op = OpShr
	default:
		lw.failf("unhandled binary %v", e.Op)
	}
	return lw.emitBin(op, a, b, exprPos(e))
}

func (lw *lowerer) scale(r Reg, size int, pos minic.Pos) Reg {
	if size == 1 {
		return r
	}
	s := lw.emitConst(int64(size), pos)
	return lw.emitBin(OpMul, r, s, pos)
}

func (lw *lowerer) lowerAssign(e *minic.AssignExpr) Reg {
	switch lhs := e.LHS.(type) {
	case *minic.Ident:
		v := lw.evalExpr(e.RHS)
		obj := lw.objOf(lhs.Sym)
		lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: NoReg, B: v, Obj: obj,
			Size: lhs.Sym.Type.Size(), Pos: exprPos(e)})
		return v
	case *minic.IndexExpr:
		addr, size := lw.indexAddr(lhs)
		v := lw.evalExpr(e.RHS)
		lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: addr, B: v, Obj: ObjNone,
			Size: size, Pos: exprPos(e)})
		return v
	case *minic.MemberExpr:
		if obj, ok := lw.splitFieldObj(lhs); ok {
			v := lw.evalExpr(e.RHS)
			lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: NoReg, B: v, Obj: obj,
				Size: lhs.Field.Type.Size(), Pos: exprPos(e)})
			return v
		}
		addr := lw.memberAddr(lhs)
		v := lw.evalExpr(e.RHS)
		lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: addr, B: v, Obj: ObjNone,
			Size: lhs.Field.Type.Size(), Pos: exprPos(e)})
		return v
	case *minic.UnaryExpr: // *p = v
		addr := lw.evalExpr(lhs.X)
		v := lw.evalExpr(e.RHS)
		lw.emit(&Instr{Op: OpStore, Dst: NoReg, A: addr, B: v, Obj: ObjNone,
			Size: lhs.TypeOf().Size(), Pos: exprPos(e)})
		return v
	}
	lw.failf("unhandled assignment target %T", e.LHS)
	return NoReg
}

func (lw *lowerer) lowerCall(e *minic.CallExpr) Reg {
	args := make([]Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = lw.evalExpr(a)
	}
	dst := NoReg
	if e.TypeOf().Kind != minic.TypeVoid {
		dst = lw.newReg()
	}
	lw.emit(&Instr{Op: OpCall, Dst: dst, A: NoReg, B: NoReg, Obj: ObjNone,
		Callee: e.Name, Args: args, Pos: exprPos(e)})
	return dst
}

func decayType(t *minic.Type) *minic.Type {
	if t.Kind == minic.TypeArray {
		return minic.PointerTo(t.Elem)
	}
	return t
}

func exprPos(e minic.Expr) minic.Pos { return minic.ExprPos(e) }
