// Package attack implements the paper's simulated-attack methodology
// (§6): repeated, independent, seeded memory tamperings of a running
// program, scored by whether the tampering changed control flow and
// whether the IPDS detected the resulting infeasible path.
//
// Two attack models are provided, mirroring the paper's vulnerability
// classes: Overflow restricts victims to stack-resident data (what a
// buffer overflow can reach — "tamper only a randomly selected specific
// local stack location"), while ArbitraryWrite can hit any data object
// (what a format-string vulnerability allows).
package attack

import (
	"math/rand"

	"repro/internal/ipds"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

// Model selects which memory an attack can corrupt.
type Model int

// Attack models.
const (
	// Overflow tampers local stack data only (buffer overflow class).
	Overflow Model = iota
	// ArbitraryWrite tampers any global or active local (format
	// string class).
	ArbitraryWrite
)

func (m Model) String() string {
	if m == Overflow {
		return "buffer overflow"
	}
	return "format string"
}

// Outcome classifies one attack.
type Outcome int

// Attack outcomes.
const (
	// NoEffect: the tampering did not change control flow. Schemes
	// monitoring control flow (including the paper's) cannot see it.
	NoEffect Outcome = iota
	// Detected: control flow changed and the IPDS raised an alarm.
	Detected
	// Missed: control flow changed but no alarm was raised.
	Missed
)

func (o Outcome) String() string {
	switch o {
	case NoEffect:
		return "no-cf-change"
	case Detected:
		return "detected"
	case Missed:
		return "missed"
	}
	return "?"
}

// Timing selects when in the victim's execution the tampering lands.
type Timing int

// Tamper timings.
const (
	// AtInput corrupts memory immediately after a randomly chosen
	// input-consuming call (read_line and friends): memory corruption
	// through overflows and format strings happens while the program
	// processes attacker-supplied input. The default.
	AtInput Timing = iota
	// AtAnyStep corrupts memory at a uniformly random dynamic
	// instruction.
	AtAnyStep
)

func (tm Timing) String() string {
	if tm == AtInput {
		return "at-input"
	}
	return "any-step"
}

// Trial records one attack.
type Trial struct {
	Seed     int64
	Step     uint64 // dynamic step at which memory was tampered
	Victim   ir.ObjID
	Offset   uint64 // byte offset within the victim (arrays)
	Value    int64
	Outcome  Outcome
	Faulted  bool // the tampered run crashed (wild pointer etc.)
	AlarmSeq uint64
}

// Result aggregates a campaign.
type Result struct {
	Program   string
	Model     Model
	Trials    []Trial
	CFChanged int // tamperings that changed control flow
	Detected  int // tamperings detected by IPDS
}

// CFChangeRate returns the fraction of attacks that changed control
// flow (Figure 7's first bar).
func (r *Result) CFChangeRate() float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	return float64(r.CFChanged) / float64(len(r.Trials))
}

// DetectionRate returns the fraction of all attacks detected (Figure
// 7's second bar).
func (r *Result) DetectionRate() float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	return float64(r.Detected) / float64(len(r.Trials))
}

// ConditionalDetectionRate returns detected / cf-changed: how many of
// the attacks the scheme could possibly see were actually caught (the
// paper's 59.3% headline).
func (r *Result) ConditionalDetectionRate() float64 {
	if r.CFChanged == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.CFChanged)
}

// Campaign configures a set of independent attacks on one program.
type Campaign struct {
	Name      string // program name for reporting
	Artifacts *pipeline.Artifacts
	Input     []string // session driving the program
	Model     Model
	Timing    Timing // when tampering lands (default AtInput)
	Attacks   int
	Seed      int64
	VMConfig  vm.Config
	IPDS      ipds.Config
}

// golden captures the reference run.
type golden struct {
	res    vm.Result
	inputs uint64 // input-consuming calls observed
}

// isInputCall reports whether the instruction consumes session input.
func isInputCall(in *ir.Instr) bool {
	if in.Op != ir.OpCall {
		return false
	}
	switch in.Callee {
	case "read_line", "read_line_n", "read_int":
		return true
	}
	return false
}

// Run executes the campaign: one clean golden run, then Attacks
// independent tampered runs, each compared against the golden control
// flow.
func (c *Campaign) Run() *Result {
	cfg := c.VMConfig
	if cfg.MemSize == 0 {
		cfg = vm.DefaultConfig
	}
	cfg.RecordBranches = true
	ic := c.IPDS
	if ic == (ipds.Config{}) {
		ic = ipds.DefaultConfig
	}

	// Golden run (also sanity-checks zero false positives). Subscribe to
	// the machine's event stream rather than polling the alarm ring: any
	// alarm on an untampered run violates the scheme's core guarantee,
	// so make it loud the instant it fires.
	gv := vm.New(c.Artifacts.Prog, cfg, c.Input)
	gm := ipds.New(c.Artifacts.Image, ic)
	gm.SetEventSink(ipds.FuncSink(func(e ipds.Event) {
		if e.Kind == ipds.EvAlarm {
			panic("attack: false positive on untampered golden run: " + e.Alarm.String())
		}
	}))
	ipds.Attach(gv, gm)
	var g golden
	gv.AddHooks(vm.Hooks{OnInstr: func(in *ir.Instr, addr uint64, size int) {
		if isInputCall(in) {
			g.inputs++
		}
	}})
	g.res = gv.Run()

	out := &Result{Program: c.Name, Model: c.Model}
	rng := rand.New(rand.NewSource(c.Seed))
	for i := 0; i < c.Attacks; i++ {
		trial := c.runOne(rng.Int63(), cfg, ic, &g)
		out.Trials = append(out.Trials, trial)
		if trial.Outcome != NoEffect {
			out.CFChanged++
		}
		if trial.Outcome == Detected {
			out.Detected++
		}
	}
	return out
}

func (c *Campaign) runOne(seed int64, cfg vm.Config, ic ipds.Config, g *golden) Trial {
	rng := rand.New(rand.NewSource(seed))
	trial := Trial{Seed: seed}
	if g.res.Steps < 4 {
		return trial
	}

	v := vm.New(c.Artifacts.Prog, cfg, c.Input)
	m := ipds.New(c.Artifacts.Image, ic)
	// Subscribe to the alarm event stream; the first alarm decides the
	// trial, independent of how many later alarms the bounded ring keeps.
	var firstAlarm *ipds.Alarm
	m.SetEventSink(ipds.FuncSink(func(e ipds.Event) {
		if e.Kind == ipds.EvAlarm && firstAlarm == nil {
			firstAlarm = e.Alarm
		}
	}))
	ipds.Attach(v, m)

	prog := c.Artifacts.Prog
	tampered := false
	tamper := func(step uint64) {
		tampered = true
		trial.Step = step
		victims := v.ActiveObjects(c.Model == Overflow)
		if len(victims) == 0 {
			return
		}
		id := victims[rng.Intn(len(victims))]
		obj := prog.Object(id)
		addr, ok := v.AddrOfObj(id)
		if !ok {
			return
		}
		trial.Victim = id
		size := 8
		if obj.IsScalar() {
			size = obj.Size()
			// A write that leaves the value unchanged is not a
			// tampering; always write something different. Half the
			// time flip within the flag/enum range (non-control-data
			// attacks write meaningful values — Figure 1's attacker
			// writes "admin", not garbage), half the time garbage.
			cur, _ := v.Peek(addr, size)
			if rng.Intn(2) == 0 {
				trial.Value = 1 - cur // 0<->1, n -> 1-n
			} else {
				trial.Value = rng.Int63n(1 << 16)
				if rng.Intn(2) == 0 {
					trial.Value = -trial.Value
				}
			}
			if trial.Value == cur {
				trial.Value = cur + 1 + rng.Int63n(9)
			}
		} else {
			// Arrays: corrupt one word-sized location (the paper
			// tampers "a (randomly selected) specific local stack
			// location" — a machine word, as a single overflowed store
			// would).
			words := (obj.Size() + 7) / 8
			trial.Offset = uint64(rng.Intn(words)) * 8
			addr += trial.Offset
			remain := obj.Size() - int(trial.Offset)
			trial.Value = rng.Int63()
			if remain >= 8 {
				_ = v.Poke(addr, trial.Value, 8)
				return
			}
			for b := 0; b < remain; b++ {
				_ = v.Poke(addr+uint64(b), (trial.Value>>(8*uint(b)))&0xff, 1)
			}
			return
		}
		_ = v.Poke(addr, trial.Value, size)
	}

	if c.Timing == AtInput && g.inputs > 0 {
		// Tamper right after the k-th input-consuming call completes
		// (OnInstr fires before the call executes; arming and poking
		// from the post-step hook lands the corruption after the fresh
		// input was written, like a real overflow during the copy).
		target := 1 + uint64(rng.Int63n(int64(g.inputs)))
		var seen uint64
		armed := false
		v.AddHooks(vm.Hooks{
			OnInstr: func(in *ir.Instr, addr uint64, size int) {
				if tampered || armed || !isInputCall(in) {
					return
				}
				seen++
				if seen == target {
					armed = true
				}
			},
			OnStep: func(s uint64) {
				if armed && !tampered {
					tamper(s)
				}
			},
		})
	} else {
		// Uniformly random dynamic step inside the golden execution.
		step := 1 + uint64(rng.Int63n(int64(g.res.Steps-2)))
		v.AddHooks(vm.Hooks{OnStep: func(s uint64) {
			if !tampered && s == step {
				tamper(s)
			}
		}})
	}

	res := v.Run()
	trial.Faulted = res.Status == vm.Faulted

	changed := controlFlowChanged(g.res, res)
	switch {
	case !changed:
		trial.Outcome = NoEffect
	case firstAlarm != nil:
		trial.Outcome = Detected
		trial.AlarmSeq = firstAlarm.Seq
	default:
		trial.Outcome = Missed
	}
	return trial
}

// controlFlowChanged compares a tampered run against the golden run.
// Any divergence in the committed-branch stream, termination status or
// exit code counts as a control-flow change.
func controlFlowChanged(g, a vm.Result) bool {
	if g.Status != a.Status || g.ExitCode != a.ExitCode {
		return true
	}
	if len(g.Branches) != len(a.Branches) {
		return true
	}
	for i := range g.Branches {
		if g.Branches[i] != a.Branches[i] {
			return true
		}
	}
	return false
}
