package attack

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func campaign(t *testing.T, w *workload.Workload, model Model, n int, seed int64) *Result {
	t.Helper()
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	c := &Campaign{
		Name:      w.Name,
		Artifacts: art,
		Input:     w.AttackSession,
		Model:     model,
		Attacks:   n,
		Seed:      seed,
	}
	return c.Run()
}

func TestCampaignBasics(t *testing.T) {
	res := campaign(t, workload.Telnetd(), ArbitraryWrite, 40, 1)
	if len(res.Trials) != 40 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if res.Program != "telnetd" {
		t.Errorf("program = %q", res.Program)
	}
	// Counter consistency.
	cf, det := 0, 0
	for _, tr := range res.Trials {
		switch tr.Outcome {
		case Detected:
			cf++
			det++
		case Missed:
			cf++
		}
	}
	if cf != res.CFChanged || det != res.Detected {
		t.Errorf("counters inconsistent: %d/%d vs %d/%d", cf, det, res.CFChanged, res.Detected)
	}
	if res.Detected > res.CFChanged {
		t.Error("cannot detect more than changed control flow")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := campaign(t, workload.HTTPD(), Overflow, 25, 42)
	b := campaign(t, workload.HTTPD(), Overflow, 25, 42)
	if a.CFChanged != b.CFChanged || a.Detected != b.Detected {
		t.Errorf("non-deterministic: %d/%d vs %d/%d",
			a.CFChanged, a.Detected, b.CFChanged, b.Detected)
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("trial %d differs", i)
		}
	}
	c := campaign(t, workload.HTTPD(), Overflow, 25, 43)
	same := true
	for i := range a.Trials {
		if a.Trials[i] != c.Trials[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different campaigns")
	}
}

func TestCampaignDetectsSomething(t *testing.T) {
	// Across the servers, a meaningful fraction of tamperings must
	// change control flow, and a meaningful fraction of those must be
	// detected (Figure 7's shape).
	total, cf, det := 0, 0, 0
	for _, w := range []*workload.Workload{workload.Telnetd(), workload.WuFTPD(), workload.SSHD()} {
		res := campaign(t, w, ArbitraryWrite, 60, 7)
		total += len(res.Trials)
		cf += res.CFChanged
		det += res.Detected
	}
	if cf == 0 {
		t.Fatal("no tampering changed control flow")
	}
	if det == 0 {
		t.Fatal("nothing detected")
	}
	cfRate := float64(cf) / float64(total)
	condRate := float64(det) / float64(cf)
	if cfRate < 0.1 || cfRate > 0.95 {
		t.Errorf("CF-change rate %.2f implausible", cfRate)
	}
	if condRate < 0.15 {
		t.Errorf("conditional detection rate %.2f too low", condRate)
	}
	t.Logf("cfRate=%.2f condDetect=%.2f", cfRate, condRate)
}

func TestOverflowModelOnlyHitsStack(t *testing.T) {
	w := workload.Crond()
	art, err := pipeline.Compile(w.Source, ir.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	res := campaign(t, w, Overflow, 50, 3)
	for _, tr := range res.Trials {
		if tr.Victim == ir.ObjNone || tr.Step == 0 {
			continue
		}
		obj := art.Prog.Object(tr.Victim)
		if obj.Kind == ir.ObjGlobal || obj.Kind == ir.ObjString {
			t.Errorf("overflow model tampered non-stack object %s", obj.Name)
		}
	}
}

func TestRatesArithmetic(t *testing.T) {
	r := &Result{
		Trials:    make([]Trial, 10),
		CFChanged: 4,
		Detected:  2,
	}
	if r.CFChangeRate() != 0.4 {
		t.Errorf("CFChangeRate = %v", r.CFChangeRate())
	}
	if r.DetectionRate() != 0.2 {
		t.Errorf("DetectionRate = %v", r.DetectionRate())
	}
	if r.ConditionalDetectionRate() != 0.5 {
		t.Errorf("ConditionalDetectionRate = %v", r.ConditionalDetectionRate())
	}
	empty := &Result{}
	if empty.CFChangeRate() != 0 || empty.DetectionRate() != 0 || empty.ConditionalDetectionRate() != 0 {
		t.Error("empty result rates must be 0")
	}
}

func TestModelAndOutcomeStrings(t *testing.T) {
	if Overflow.String() != "buffer overflow" || ArbitraryWrite.String() != "format string" {
		t.Error("model strings")
	}
	if NoEffect.String() != "no-cf-change" || Detected.String() != "detected" ||
		Missed.String() != "missed" || Outcome(9).String() != "?" {
		t.Error("outcome strings")
	}
}
