// Package ring provides the single-producer/single-consumer bounded
// ring buffer and the spin-then-park primitive underneath the daemon's
// per-core serve path (internal/server).
//
// Concurrency contract. An SPSC ring has exactly two parties: ONE
// producer goroutine, which may call TryPush, PushSlice, Len, Cap and
// HighWater, and ONE consumer goroutine, which may call TryPop,
// PopSlice and Len. Neither side ever blocks the other: both ends are
// a handful of plain stores plus one atomic publish, with the opposite
// index read through a goroutine-local cache so the common case
// touches no shared cache line at all. A third goroutine may call Len,
// Cap or HighWater for telemetry — those are single atomic loads and
// tolerate being racy snapshots — but must never push or pop.
//
// The head and tail words live on separate cache lines (padded), so
// the producer publishing and the consumer retiring never false-share.
// Slots freed by PopSlice/TryPop are zeroed before the head is
// published: a popped element holding pointers is unreachable from the
// ring the moment the consumer owns it, which keeps pooled objects
// collectable and ownership handoffs single-owner.
//
// Parker is the companion wait primitive: a consumer (or producer)
// that has spun over empty (or full) rings long enough announces
// intent with Prepare, re-checks its condition, and Parks; the other
// side calls Wake after publishing. The Prepare/re-check/Park order
// plus sequentially-consistent atomics make the lost-wakeup race
// impossible (see Parker).
package ring

import "sync/atomic"

// cacheLinePad separates the producer's and consumer's index words so
// the two sides never write the same cache line.
type cacheLinePad [64]byte

// SPSC is a bounded single-producer/single-consumer ring buffer. The
// zero value is not usable; call New. Capacity is rounded up to a
// power of two so index masking replaces modulo on the hot path.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    cacheLinePad

	// Producer's cache line: tail is written by the producer and read
	// by the consumer; headCache and hw are producer-private (hw is
	// atomic only so telemetry readers can load it).
	tail      atomic.Uint64
	headCache uint64
	hw        atomic.Uint64
	_         cacheLinePad

	// Consumer's cache line: head is written by the consumer and read
	// by the producer; tailCache is consumer-private.
	head      atomic.Uint64
	tailCache uint64
	_         cacheLinePad
}

// New returns an empty ring holding at least capacity elements
// (rounded up to the next power of two; minimum 1).
func New[T any](capacity int) *SPSC[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap reports the ring's true (rounded) capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len reports the current occupancy. It is exact when called by the
// producer or consumer and a racy-but-bounded snapshot from anyone
// else.
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// HighWater reports the maximum occupancy the producer has ever
// observed at publish time (an upper bound on true occupancy, never
// exceeding Cap). Readable from any goroutine.
func (r *SPSC[T]) HighWater() int { return int(r.hw.Load()) }

// TryPush appends v and reports true, or reports false if the ring is
// full. Producer goroutine only.
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if t-r.headCache >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	if n := t + 1 - r.headCache; n > r.hw.Load() {
		r.hw.Store(n)
	}
	return true
}

// PushSlice appends as many elements of vs as fit and returns how many
// were taken, publishing them with a single tail store — the batch
// variant the server's readers use to hand one socket read's worth of
// decoded frames to a verifier in one ring operation. Producer
// goroutine only.
func (r *SPSC[T]) PushSlice(vs []T) int {
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.headCache)
	if free < uint64(len(vs)) {
		r.headCache = r.head.Load()
		free = uint64(len(r.buf)) - (t - r.headCache)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	r.tail.Store(t + n)
	if occ := t + n - r.headCache; occ > r.hw.Load() {
		r.hw.Store(occ)
	}
	return int(n)
}

// TryPop removes and returns the oldest element, or reports false if
// the ring is empty. Consumer goroutine only.
func (r *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if r.tailCache == h {
		r.tailCache = r.tail.Load()
		if r.tailCache == h {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// PopSlice removes up to len(dst) elements into dst and returns how
// many were taken, retiring them with a single head store. Freed slots
// are zeroed so popped pointers have one owner. Consumer goroutine
// only.
func (r *SPSC[T]) PopSlice(dst []T) int {
	var zero T
	h := r.head.Load()
	n := uint64(len(dst))
	avail := r.tailCache - h
	if avail < n {
		r.tailCache = r.tail.Load()
		avail = r.tailCache - h
		if avail == 0 {
			return 0
		}
	}
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
		r.buf[(h+i)&r.mask] = zero
	}
	r.head.Store(h + n)
	return int(n)
}
