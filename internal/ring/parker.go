package ring

import "sync/atomic"

// Parker is the busy-spin-then-park half of the per-core serve loops:
// a goroutine that has found its rings empty (or full) for long enough
// blocks here until the opposite side publishes more work. It is a
// one-slot wake channel plus a "parked" flag, with a protocol that
// makes the classic lost-wakeup race impossible:
//
//	sleeper:                      waker:
//	  Prepare()   (parked = true)   ...publish work...
//	  re-check work                 Wake()  (signal iff parked)
//	  Park() / Cancel()
//
// Go's sync/atomic operations are sequentially consistent, so in the
// total order either the waker's parked-flag load observes Prepare —
// and Wake signals the channel — or it precedes Prepare, in which case
// the work it published precedes the sleeper's re-check, which then
// sees the work and Cancels. Either way the sleeper cannot block on
// work that has already arrived.
//
// Any number of goroutines may Wake; exactly one may sleep
// (Prepare/Cancel/Park). Parks and Wakes counters are readable from
// anywhere.
type Parker struct {
	wake   chan struct{}
	parked atomic.Bool
	parks  atomic.Uint64
	wakes  atomic.Uint64
}

// NewParker returns a ready Parker.
func NewParker() *Parker {
	return &Parker{wake: make(chan struct{}, 1)}
}

// Prepare announces intent to park. The sleeper must re-check its work
// condition between Prepare and Park, and call Cancel instead of Park
// if work appeared.
func (p *Parker) Prepare() { p.parked.Store(true) }

// Cancel retracts a Prepare: work was found during the re-check.
func (p *Parker) Cancel() { p.parked.Store(false) }

// Park blocks until a Wake arrives. Must be preceded by Prepare and a
// work re-check. A buffered wake from the re-check window is consumed
// here, so a spurious early return (never a lost sleep) is the worst
// case — callers loop over their work condition anyway.
func (p *Parker) Park() {
	<-p.wake
	p.parked.Store(false)
	p.parks.Add(1)
}

// Wake unblocks the sleeper iff it is parked (or mid-Prepare). Cheap
// when nobody is parked: one atomic load.
func (p *Parker) Wake() {
	if p.parked.Load() {
		select {
		case p.wake <- struct{}{}:
			p.wakes.Add(1)
		default:
		}
	}
}

// Parks reports how many times the sleeper actually blocked.
func (p *Parker) Parks() uint64 { return p.parks.Load() }

// Wakes reports how many wake signals were delivered (not the calls to
// Wake, most of which find nobody parked and cost one load).
func (p *Parker) Wakes() uint64 { return p.wakes.Load() }
