package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {63, 64}, {64, 64}, {65, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestWraparound pushes and pops far past the capacity so every slot
// is reused many times and the masked indexes wrap uint64 arithmetic.
func TestWraparound(t *testing.T) {
	r := New[int](4)
	next := 0
	for i := 0; i < 1000; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused on a non-full ring", i)
		}
		if i%3 == 2 { // drain in a different rhythm than the fill
			for r.Len() > 0 {
				v, ok := r.TryPop()
				if !ok {
					t.Fatal("pop refused on a non-empty ring")
				}
				if v != next {
					t.Fatalf("popped %d, want %d (FIFO violated)", v, next)
				}
				next++
			}
		}
	}
	for {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("popped %d, want %d", v, next)
		}
		next++
	}
	if next != 1000 {
		t.Fatalf("drained %d items, want 1000", next)
	}
}

func TestFullEmpty(t *testing.T) {
	r := New[int](4)
	if _, ok := r.TryPop(); ok {
		t.Fatal("popped from an empty ring")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push accepted on a full ring")
	}
	if got := r.Len(); got != r.Cap() {
		t.Fatalf("Len = %d, want %d", got, r.Cap())
	}
	if got := r.HighWater(); got != r.Cap() {
		t.Fatalf("HighWater = %d, want %d", got, r.Cap())
	}
	for i := 0; i < r.Cap(); i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("popped from a drained ring")
	}
	// Full/empty again after wrap: the indexes are now mid-range.
	if !r.TryPush(7) {
		t.Fatal("push refused after drain")
	}
	if v, ok := r.TryPop(); !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
}

func TestPushSlicePartial(t *testing.T) {
	r := New[int](4)
	in := []int{1, 2, 3, 4, 5, 6}
	if n := r.PushSlice(in); n != 4 {
		t.Fatalf("PushSlice took %d, want 4", n)
	}
	dst := make([]int, 8)
	if n := r.PopSlice(dst[:2]); n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("PopSlice(2) = %d %v", n, dst[:2])
	}
	if n := r.PushSlice(in[4:]); n != 2 {
		t.Fatalf("PushSlice tail took %d, want 2", n)
	}
	if n := r.PopSlice(dst); n != 4 {
		t.Fatalf("PopSlice drained %d, want 4", n)
	}
	for i, want := range []int{3, 4, 5, 6} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	if n := r.PushSlice(nil); n != 0 {
		t.Fatalf("PushSlice(nil) = %d", n)
	}
}

// TestPopZeroesSlots holds the ownership rule: a popped pointer must
// not stay reachable from the ring's backing array.
func TestPopZeroesSlots(t *testing.T) {
	r := New[*int](2)
	v := new(int)
	r.TryPush(v)
	r.TryPop()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after pop", i)
		}
	}
	r.TryPush(v)
	dst := make([]*int, 1)
	r.PopSlice(dst)
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still holds a pointer after PopSlice", i)
		}
	}
}

// TestConcurrentSPSC is the -race workout: one producer, one consumer,
// mixed single/batch operations, strict FIFO asserted for every
// element. Run with `go test -race ./internal/ring`.
func TestConcurrentSPSC(t *testing.T) {
	const total = 200_000
	r := New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		batch := make([]int, 0, 7)
		i := 0
		for i < total {
			if i%5 == 0 { // batch push
				batch = batch[:0]
				for j := 0; j < 7 && i+j < total; j++ {
					batch = append(batch, i+j)
				}
				off := 0
				for off < len(batch) {
					n := r.PushSlice(batch[off:])
					off += n
					if n == 0 {
						runtime.Gosched()
					}
				}
				i += len(batch)
			} else {
				for !r.TryPush(i) {
					runtime.Gosched()
				}
				i++
			}
		}
	}()
	next := 0
	dst := make([]int, 9)
	for next < total {
		var got []int
		if next%3 == 0 {
			n := r.PopSlice(dst)
			got = dst[:n]
		} else if v, ok := r.TryPop(); ok {
			dst[0] = v
			got = dst[:1]
		}
		if len(got) == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range got {
			if v != next {
				t.Fatalf("popped %d, want %d", v, next)
			}
			next++
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: Len=%d", r.Len())
	}
	if hw := r.HighWater(); hw < 1 || hw > r.Cap() {
		t.Fatalf("HighWater = %d, want within [1,%d]", hw, r.Cap())
	}
}

// TestParkerNoLostWakeup hammers the Prepare/re-check/Park handshake:
// the consumer parks whenever the ring looks empty, the producer Wakes
// after every publish, and every element must still arrive. A lost
// wakeup deadlocks the test (caught by the timeout).
func TestParkerNoLostWakeup(t *testing.T) {
	const total = 50_000
	r := New[int](8)
	p := NewParker()
	done := make(chan struct{})
	go func() { // consumer
		defer close(done)
		next := 0
		for next < total {
			v, ok := r.TryPop()
			if !ok {
				p.Prepare()
				if r.Len() == 0 {
					p.Park()
				} else {
					p.Cancel()
				}
				continue
			}
			if v != next {
				t.Errorf("popped %d, want %d", v, next)
				return
			}
			next++
		}
	}()
	for i := 0; i < total; i++ {
		for !r.TryPush(i) {
			p.Wake() // a full ring means the consumer has work; nudge anyway
			runtime.Gosched()
		}
		p.Wake()
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer never drained: lost wakeup")
	}
	if p.Parks() == 0 {
		t.Log("consumer never parked (fast host); parks=0 is legal but weakens the test")
	}
	if p.Wakes() > p.Parks()+1 {
		// Every delivered wake is consumed by exactly one Park, except
		// at most one buffered token left by a Cancel window.
		t.Fatalf("wakes %d > parks %d + 1", p.Wakes(), p.Parks())
	}
}
