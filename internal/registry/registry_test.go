package registry_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/tcache"
	"repro/internal/wire"
)

// mapSource is an in-memory Source for tests.
type mapSource map[[wire.HashLen]byte][]byte

func (m mapSource) Blob(h [wire.HashLen]byte) ([]byte, bool) {
	b, ok := m[h]
	return b, ok
}

func blobAndHash(data []byte) ([]byte, [wire.HashLen]byte) {
	return data, tcache.KeyOf(data)
}

func TestServeAndFetch(t *testing.T) {
	blob, h := blobAndHash([]byte("marshalled image bytes"))
	reg := obs.NewRegistry()
	srv := registry.NewServer(mapSource{h: blob}, reg)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	got, err := registry.Fetch(addr, h, time.Second)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Fetch returned %q, want %q", got, blob)
	}
	if n := reg.Counter("registry_serve_total").Value(); n != 1 {
		t.Fatalf("registry_serve_total = %d, want 1", n)
	}

	var missing [wire.HashLen]byte
	missing[0] = 0xff
	if _, err := registry.Fetch(addr, missing, time.Second); err == nil {
		t.Fatal("Fetch of an unknown hash succeeded")
	}
	if n := reg.Counter("registry_serve_misses_total").Value(); n != 1 {
		t.Fatalf("registry_serve_misses_total = %d, want 1", n)
	}
}

// TestFetchRejectsLyingServer pins the content-verification step: a
// registry that serves bytes not hashing to the requested address
// must be treated as a failed fetch, never trusted.
func TestFetchRejectsLyingServer(t *testing.T) {
	blob, h := blobAndHash([]byte("honest bytes"))
	_ = blob
	lying := mapSource{h: []byte("tampered bytes")}
	srv := registry.NewServer(lying, nil)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	if _, err := registry.Fetch(addr, h, time.Second); err == nil {
		t.Fatal("Fetch accepted a blob that fails content verification")
	}
}

// TestServerRejectsOversizedBlob: a blob past MaxImageBlob answers
// ImageMissing rather than an unencodable frame.
func TestServerRejectsOversizedBlob(t *testing.T) {
	blob, h := blobAndHash(make([]byte, wire.MaxImageBlob+1))
	srv := registry.NewServer(mapSource{h: blob}, nil)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	if _, err := registry.Fetch(addr, h, time.Second); err == nil {
		t.Fatal("Fetch of an over-limit blob succeeded")
	}
}

// TestServerMultipleRequestsPerConn: one connection serves many gets
// and ends cleanly on Bye.
func TestServerMultipleRequestsPerConn(t *testing.T) {
	a, ha := blobAndHash([]byte("image a"))
	b, hb := blobAndHash([]byte("image b"))
	srv := registry.NewServer(mapSource{ha: a, hb: b}, nil)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	rd := wire.NewReader(conn)
	for _, want := range [][2]interface{}{{ha, a}, {hb, b}, {ha, a}} {
		h := want[0].([wire.HashLen]byte)
		buf := wire.MustAppend(nil, wire.ImageGet{Hash: h})
		if _, err := conn.Write(buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		bl, ok := f.(wire.ImageBlob)
		if !ok || !bytes.Equal(bl.Data, want[1].([]byte)) {
			t.Fatalf("request %x answered %#v", h[:4], f)
		}
	}
	if _, err := conn.Write(wire.MustAppend(nil, wire.Bye{})); err != nil {
		t.Fatalf("bye: %v", err)
	}
	if f, err := rd.Next(); err != nil {
		t.Fatalf("bye answer: %v", err)
	} else if _, ok := f.(wire.Bye); !ok {
		t.Fatalf("bye answered %v", f.Type())
	}
}

func TestFetcherWalksPeers(t *testing.T) {
	blob, h := blobAndHash([]byte("replicated image"))
	reg := obs.NewRegistry()

	empty := registry.NewServer(mapSource{}, nil)
	emptyAddr, err := empty.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer empty.Close()

	full := registry.NewServer(mapSource{h: blob}, nil)
	fullAddr, err := full.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer full.Close()

	// Peer order: a dead address, a registry without the image, then
	// the one that has it — the fetcher must walk all three.
	dead := "127.0.0.1:1"
	f := registry.NewFetcher([]string{dead, emptyAddr, fullAddr}, time.Second, reg)
	got, ok := f.FetchBlob(h)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("FetchBlob = %q,%v; want the blob", got, ok)
	}
	if n := reg.Counter("registry_fetch_total").Value(); n != 1 {
		t.Fatalf("registry_fetch_total = %d, want 1", n)
	}
	if n := reg.Counter("registry_fetch_errors_total").Value(); n != 2 {
		t.Fatalf("registry_fetch_errors_total = %d, want 2", n)
	}

	var missing [wire.HashLen]byte
	if _, ok := f.FetchBlob(missing); ok {
		t.Fatal("FetchBlob of an unknown hash succeeded")
	}
}
