// Package registry replicates compiled table images across a fleet.
//
// A tables.Image is an immutable, content-addressed artifact — the
// SHA-256 of its marshalled bytes is both the tcache disk key and the
// hash a wire.Hello names — which makes distribution trivial: any
// node that holds the blob can serve it, any node that receives it
// can verify it against the hash it asked for, and nothing needs
// versioning or invalidation. The registry lifts the existing tcache
// tier behind the wire protocol: a Server answers ImageGet with
// ImageBlob (or ImageMissing), and a Fetcher walks its peer list
// until one answers, so a node receiving a Hello for an image it has
// never compiled fetches the bytes instead of failing.
//
// The transport reuses internal/wire framing end to end — the same
// total decoders, limits and fuzz coverage as the event stream — so
// the registry adds no second protocol surface.
package registry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tcache"
	"repro/internal/wire"
)

// Source yields marshalled image blobs by content hash. The server's
// image store implements it over its memory map and tcache tier.
type Source interface {
	// Blob returns the marshalled tables.Image whose SHA-256 is h.
	Blob(h [wire.HashLen]byte) ([]byte, bool)
}

// Server answers ImageGet requests over the wire protocol. One
// connection may carry any number of requests; a Bye or EOF ends it.
type Server struct {
	src Source

	serves *obs.Counter
	misses *obs.Counter

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewServer serves blobs from src; reg may be nil.
func NewServer(src Source, reg *obs.Registry) *Server {
	return &Server{
		src:    src,
		serves: reg.Counter("registry_serve_total"),
		misses: reg.Counter("registry_serve_misses_total"),
	}
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean close, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("registry: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves in a background
// goroutine, returning the bound address (addr may use port 0).
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops accepting and waits for in-flight requests.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// requestTimeout bounds one request/response exchange on the server
// side so a stalled peer cannot pin a handler goroutine.
const requestTimeout = 10 * time.Second

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	rd := wire.NewReader(conn)
	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(requestTimeout))
		f, err := rd.Next()
		if err != nil {
			return // EOF, timeout or protocol rot: drop the connection
		}
		get, ok := f.(wire.ImageGet)
		if !ok {
			if _, bye := f.(wire.Bye); bye {
				conn.SetWriteDeadline(time.Now().Add(requestTimeout))
				buf, _ = wire.Append(buf[:0], wire.Bye{})
				conn.Write(buf)
			}
			return
		}
		s.serves.Inc()
		data, ok := s.src.Blob(get.Hash)
		var reply wire.Frame = wire.ImageBlob{Hash: get.Hash, Data: data}
		if !ok || len(data) > wire.MaxImageBlob {
			// An over-limit image is indistinguishable from a missing
			// one to the peer: it must compile or fetch elsewhere.
			s.misses.Inc()
			reply = wire.ImageMissing{Hash: get.Hash}
		}
		buf, err = wire.Append(buf[:0], reply)
		if err != nil {
			return
		}
		conn.SetWriteDeadline(time.Now().Add(requestTimeout))
		if _, err := conn.Write(buf); err != nil {
			return
		}
	}
}

// Fetch retrieves one image blob from the registry at addr, verifying
// that the returned bytes hash to h before returning them. It is the
// single-peer primitive under Fetcher.
func Fetch(addr string, h [wire.HashLen]byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	buf, err := wire.Append(nil, wire.ImageGet{Hash: h})
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}
	f, err := wire.NewReader(conn).Next()
	if err != nil {
		return nil, err
	}
	switch fr := f.(type) {
	case wire.ImageBlob:
		if fr.Hash != h {
			return nil, fmt.Errorf("registry: %s answered for the wrong hash", addr)
		}
		if tcache.KeyOf(fr.Data) != h {
			return nil, fmt.Errorf("registry: blob from %s fails content verification", addr)
		}
		return fr.Data, nil
	case wire.ImageMissing:
		return nil, fmt.Errorf("registry: %s does not hold %x", addr, h[:8])
	default:
		return nil, fmt.Errorf("registry: unexpected %v answer from %s", f.Type(), addr)
	}
}

// Fetcher walks a peer list until one serves the requested image. It
// satisfies the server's BlobFetcher hook, turning an unknown-image
// refusal into a fleet-wide lookup.
type Fetcher struct {
	peers   []string
	timeout time.Duration

	fetches *obs.Counter
	errors  *obs.Counter
}

// NewFetcher builds a fetcher over peer registry addresses; reg may
// be nil. timeout <= 0 defaults to 5s per peer.
func NewFetcher(peers []string, timeout time.Duration, reg *obs.Registry) *Fetcher {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Fetcher{
		peers:   peers,
		timeout: timeout,
		fetches: reg.Counter("registry_fetch_total"),
		errors:  reg.Counter("registry_fetch_errors_total"),
	}
}

// FetchBlob tries each peer in order and returns the first verified
// blob. ok is false when no peer holds the image.
func (f *Fetcher) FetchBlob(h [wire.HashLen]byte) ([]byte, bool) {
	for _, addr := range f.peers {
		data, err := Fetch(addr, h, f.timeout)
		if err != nil {
			f.errors.Inc()
			continue
		}
		f.fetches.Inc()
		return data, true
	}
	return nil, false
}
