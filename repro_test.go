package repro

import (
	"strings"
	"testing"
)

const demoSrc = `
int secret;
void barrier() { }
int main() {
	secret = read_int();
	if (secret == 7) {
		print_str("privileged");
	}
	barrier();
	if (secret == 7) {
		return 1;
	}
	return 0;
}`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]string{"7"})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if res.Detected() {
		t.Errorf("false positive: %v", res.Alarms)
	}
	if len(res.Output) != 1 || res.Output[0] != "privileged" {
		t.Errorf("output = %v", res.Output)
	}
	if res.Steps == 0 {
		t.Error("no steps recorded")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(`int main() { return undefined; }`); err == nil {
		t.Error("expected compile error")
	}
}

func TestIntrospection(t *testing.T) {
	p, err := Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckedBranches() == 0 {
		t.Error("no checked branches")
	}
	if len(p.Correlations()) == 0 {
		t.Error("no correlations found")
	}
	d := p.DumpIR()
	if !strings.Contains(d, "func main") {
		t.Error("dump missing main")
	}
	s := p.TableSizes()
	if s.AvgBSVBits <= 0 {
		t.Error("table sizes empty")
	}
	if len(p.TableImage()) == 0 {
		t.Error("marshalled image empty")
	}
}

func TestAttackFacade(t *testing.T) {
	// A command loop with several input events and live decision state
	// between them, so input-timed tampering has real windows.
	p, err := Compile(`
		int mode;
		int main() {
			int i;
			mode = read_int();
			for (i = 0; i < 4; i++) {
				int cmdv;
				cmdv = read_int();
				if (mode == 1) { print_int(cmdv); }
				if (mode == 1) { print_int(i); }
			}
			return 0;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Attack(40, 99, ArbitraryWrite, []string{"1", "5", "6", "7", "8"})
	if len(res.Trials) != 40 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if res.CFChanged == 0 {
		t.Error("no control-flow changes across 40 tamperings")
	}
	if res.Detected == 0 {
		t.Error("nothing detected")
	}
}

func TestTimeFacade(t *testing.T) {
	p, err := Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Time([]string{"7"}, MachineConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := p.Time([]string{"7"}, MachineConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == 0 || guarded.Cycles < base.Cycles {
		t.Errorf("cycles: base %d guarded %d", base.Cycles, guarded.Cycles)
	}
}

func TestRunStepLimitSurfaces(t *testing.T) {
	p, err := Compile(`int main() { while (1) { } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err == nil {
		t.Error("expected step-budget error")
	}
}

func TestOptionsAblation(t *testing.T) {
	base, err := CompileWithOptions(demoSrc, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	promo, err := CompileWithOptions(demoSrc, Options{Forwarding: true, RegionPromotion: true})
	if err != nil {
		t.Fatal(err)
	}
	if promo.CheckedBranches() > base.CheckedBranches() {
		t.Error("promotion should not add checked branches")
	}
}
